//! Chaos runs: a full workload (MapReduce job or BSFS file churn) on a
//! simulated cluster while a seeded [`ChaosSchedule`] injects faults, then
//! a quiescence phase (heal everything, let the reaper settle the books)
//! and the global [`invariants`](crate::invariants) check.
//!
//! Everything is deterministic per `(workload, seed)`: the fabric, the
//! schedule, the workload's own randomness all derive from the seed, so a
//! failing run replays byte-identically from its report's replay line.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use blobseer::{BlobSeerConfig, Layout};
use bsfs::Bsfs;
use dfs::{DfsPath, FileSystem};
use fabric::{ClusterSpec, Fabric, FabricStats, NodeId, Payload, Proc, MILLIS};
use mapreduce::{JobConf, MrCluster, MrConfig, OutputMode};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::invariants;
use crate::schedule::{ChaosAction, ChaosConfig, ChaosSchedule};

/// The workloads a chaos schedule runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Wordcount MapReduce job (shared-append output), verified against
    /// `workloads::wordcount::reference_counts`.
    Wordcount,
    /// Data-join MapReduce job over last.fm-style inputs, verified against
    /// `workloads::datajoin::reference_join`.
    DataJoin,
    /// Concurrent BSFS file churn: private and shared append streams plus
    /// delete/recreate, verified for append atomicity and ordering.
    BsfsChurn,
    /// Reader storm on a replica-bearing layout: a small writer pool
    /// appends tagged blocks while a larger reader pool hammers full-file
    /// reads through the cached, replica-preferring path — with replica
    /// crash/crash-restart faults in the budget.
    ReaderStorm,
    /// Shuffle storm: a wordcount job with maps ≫ nodes, tier-2 node
    /// combining on and an eager flush cadence (maximally streaming
    /// shuffle), while map-output-loss faults wipe node spools mid-shuffle
    /// and force speculative re-runs. Output must match the fault-free
    /// oracle exactly.
    ShuffleStorm,
}

impl Workload {
    pub const ALL: [Workload; 5] = [
        Workload::Wordcount,
        Workload::DataJoin,
        Workload::BsfsChurn,
        Workload::ReaderStorm,
        Workload::ShuffleStorm,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Workload::Wordcount => "wordcount",
            Workload::DataJoin => "datajoin",
            Workload::BsfsChurn => "bsfs-churn",
            Workload::ReaderStorm => "reader-storm",
            Workload::ShuffleStorm => "shuffle-storm",
        }
    }

    pub fn parse(s: &str) -> Option<Workload> {
        Workload::ALL.iter().copied().find(|w| w.name() == s)
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything a chaos run reports. Two runs with the same `(workload,
/// seed)` produce equal reports — the replay tests assert exactly that.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub workload: Workload,
    pub seed: u64,
    /// Fingerprint of the generated schedule ([`ChaosSchedule::digest`]).
    pub schedule_digest: u64,
    /// Service fault injections in the schedule.
    pub injections: usize,
    /// Fabric counters at the end of the run (deterministic per seed).
    pub stats: FabricStats,
    /// Invariant violations plus workload-level correctness failures
    /// (empty = the run survived its faults).
    pub violations: Vec<String>,
    /// Operations that failed *during* the faulted window and were
    /// tolerated by the workload (expected under crashes/outages).
    pub tolerated_errors: u64,
}

impl RunReport {
    /// The exact command that replays this run, for failure messages.
    pub fn replay_command(&self) -> String {
        format!(
            "CHAOS_WORKLOAD={} CHAOS_SEED={} cargo test -q -p chaos --test chaos_sweep \
             replay_from_env -- --nocapture",
            self.workload, self.seed
        )
    }

    /// Panic with the seed and replay command if any violation was found.
    pub fn assert_clean(&self) {
        assert!(
            self.violations.is_empty(),
            "chaos run failed (workload={}, seed={}, schedule digest {:#x}, {} injections):\n  {}\n\
             replay with:\n  {}",
            self.workload,
            self.seed,
            self.schedule_digest,
            self.injections,
            self.violations.join("\n  "),
            self.replay_command()
        );
    }
}

/// Run `workload` under the seeded fault schedule. The schedule is scaled
/// to the workload's survivability envelope (see [`budget_for`]).
pub fn run_chaos(workload: Workload, seed: u64) -> RunReport {
    run(workload, seed, true)
}

/// Fault-free control run: same harness, same seed-derived workload, empty
/// schedule. Anything this reports is a workload or harness bug, not chaos.
pub fn run_quiet(workload: Workload, seed: u64) -> RunReport {
    run(workload, seed, false)
}

/// Cluster shape shared by all chaos workloads.
const NODES: u32 = 8;
const REPLICATION: usize = 2;
const WRITE_TIMEOUT_NS: u64 = 2_000 * MILLIS;
const REAPER_INTERVAL_NS: u64 = 50 * MILLIS;
const HORIZON_NS: u64 = 2_000 * MILLIS;

/// The fault budget for a workload. MapReduce jobs abort the whole run on a
/// task failure, so they only get *survivable* faults: short net faults,
/// `replication - 1` concurrent provider crashes, VM pauses, reaper pauses.
/// The BSFS churn workload tolerates per-operation errors, so it also gets
/// metadata-server outages.
pub fn budget_for(workload: Workload, layout: &Layout) -> ChaosConfig {
    let mut cfg = ChaosConfig::quiet(HORIZON_NS, NODES, layout.providers.len(), layout.meta.len());
    cfg.provider_crashes = 2;
    cfg.max_concurrent_provider_crashes = REPLICATION - 1;
    // Providers deploy persistently (see `run`), so full process deaths are
    // survivable too: while wiped the provider is down like a `Crash`, and
    // the heal must rebuild it byte-for-byte from its pstore directory.
    cfg.provider_restarts = 2;
    cfg.vm_pauses = 1;
    cfg.reaper_pauses = 1;
    cfg.net_faults = 4;
    cfg.max_service_fault_ns = 200 * MILLIS;
    // Net fault windows stay two orders of magnitude under the write
    // timeout so a stalled transfer can never expire a lease mid-write.
    cfg.max_net_fault_ns = 40 * MILLIS;
    if workload == Workload::BsfsChurn {
        cfg.meta_crashes = 2;
        cfg.meta_restarts = 1;
    }
    if workload == Workload::ReaderStorm {
        // The storm runs the replica-bearing layout: replica crashes and
        // crash-restarts only degrade read capacity (reads fail over to the
        // primaries), so they are survivable for any workload — the storm
        // is the one that actually keeps the replica read path hot.
        cfg.read_replicas = layout.read_replicas.len();
        cfg.replica_crashes = 2;
        cfg.replica_restarts = 2;
    }
    if workload == Workload::ShuffleStorm {
        // Wiping a node's shuffle spool is survivable by design: the
        // jobtracker re-queues the buried tasks and reducers wait for the
        // replacement deliveries.
        cfg.map_output_losses = 3;
    }
    cfg
}

/// Layout for a workload: the reader storm carves two dedicated read
/// replicas off the provider tail; every other workload runs the plain
/// compact layout.
fn layout_for(workload: Workload, spec: &ClusterSpec) -> Layout {
    let layout = Layout::compact(spec);
    if workload == Workload::ReaderStorm {
        layout.with_read_replicas_from_tail(2)
    } else {
        layout
    }
}

/// Serial number distinguishing concurrent runs of the same `(workload,
/// seed)` inside one test process (sweep vs. replay test threads), so their
/// pstore directories never collide. The path never feeds the simulation,
/// so reports stay deterministic.
static RUN_SERIAL: AtomicU64 = AtomicU64::new(0);

fn run(workload: Workload, seed: u64, faulted: bool) -> RunReport {
    let fx = Fabric::sim_seeded(ClusterSpec::tiny(NODES), seed);
    // Every chaos run deploys on the durable storage plane: pstore disk I/O
    // is wall-clock-only (never simulated time), so determinism per seed
    // holds, and `Fault::CrashRestart` becomes injectable everywhere. A
    // small checkpoint cadence makes recovery exercise checkpoint loading,
    // not just full-log replay.
    let persist_dir = std::env::temp_dir().join(format!(
        "blobseer-chaos-{}-{workload}-{seed}-{}",
        std::process::id(),
        RUN_SERIAL.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&persist_dir);
    let mut cfg = BlobSeerConfig::test_small(256)
        .with_replication(REPLICATION)
        .with_persist_dir(Some(persist_dir.clone()))
        .with_persist_checkpoint_bytes(Some(16 * 1024));
    cfg.timeouts.write_timeout_ns = Some(WRITE_TIMEOUT_NS);
    cfg.timeouts.reaper_interval_ns = REAPER_INTERVAL_NS;
    let layout = layout_for(workload, fx.spec());
    let bsfs = Bsfs::deploy(&fx, cfg, layout).unwrap();
    let bs = bsfs.store().clone();

    let schedule = if faulted {
        ChaosSchedule::generate(&budget_for(workload, bs.layout()), seed)
    } else {
        ChaosSchedule {
            seed,
            events: Vec::new(),
        }
    };
    let digest = schedule.digest();
    let injections = schedule.injections();

    let reaper = bsfs.start_reaper(&fx);

    // The injector walks the schedule in virtual time; each event is a
    // direct control-plane flip, so it never blocks on a faulted service.
    let bs_inj = bs.clone();
    let sched = schedule.clone();
    let injector = fx.spawn(NodeId(0), "chaos-injector", move |p: &Proc| {
        for ev in &sched.events {
            let now = p.now();
            if ev.at_ns > now {
                p.sleep(ev.at_ns - now);
            }
            match &ev.action {
                ChaosAction::Inject(t, f) => bs_inj
                    .inject(*t, *f)
                    .expect("schedule generator emitted an unsupported fault"),
                ChaosAction::Heal(t) => bs_inj.heal(*t).expect("heal of a valid target"),
                ChaosAction::Net(nf) => p.fabric().inject_net_fault(nf.clone()),
                // Applied by the MapReduce workload driver, which owns the
                // MrCluster handle; nothing to flip at the storage plane.
                ChaosAction::LoseMapOutputs(_) => {}
            }
        }
        // Belt and braces: the generator already heals every window, but a
        // quiescence phase must never start with residual faults.
        bs_inj.heal_all();
        p.fabric().clear_net_faults();
    });

    let violations: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let tolerated = Arc::new(AtomicU64::new(0));

    let fs: Arc<dyn FileSystem> = Arc::new(bsfs.clone());
    let viols = violations.clone();
    let tol = tolerated.clone();
    // The map-output-loss events are the workload driver's to apply — only
    // it owns the MrCluster handle the wipe goes through.
    let losses: Vec<(u64, NodeId)> = schedule
        .events
        .iter()
        .filter_map(|e| match e.action {
            ChaosAction::LoseMapOutputs(n) => Some((e.at_ns, n)),
            _ => None,
        })
        .collect();
    let driver = fx.spawn(NodeId(0), "chaos-driver", move |p: &Proc| {
        match workload {
            Workload::Wordcount => drive_wordcount(p, &fs, seed, &viols),
            Workload::DataJoin => drive_datajoin(p, &fs, seed, &viols),
            Workload::BsfsChurn => drive_churn(p, &fs, seed, &viols, &tol),
            Workload::ReaderStorm => drive_reader_storm(p, &fs, seed, &viols, &tol),
            Workload::ShuffleStorm => drive_shuffle_storm(p, &fs, seed, &viols, &losses),
        }
        // Quiescence: everything is healed by the horizon; give the reaper
        // a full write-timeout plus slack to settle leases, pendings and
        // registry tombstones before the books are audited.
        let settle = HORIZON_NS.max(p.now()) + WRITE_TIMEOUT_NS + 10 * REAPER_INTERVAL_NS;
        let now = p.now();
        if settle > now {
            p.sleep(settle - now);
        }
        reaper.stop();
    });

    fx.run();
    injector.take().expect("injector finished");
    driver.take().expect("driver finished");

    // The fabric returning from `run` is itself invariant #6 (no parked
    // waiter). Now audit the healed deployment with fresh clients.
    let bs_chk = bs.clone();
    let checker = fx.spawn(NodeId(0), "invariant-checker", move |p: &Proc| {
        invariants::check(p, &bs_chk)
    });
    fx.run();
    let mut all = violations.lock().clone();
    all.extend(checker.take().expect("checker finished"));

    let report = RunReport {
        workload,
        seed,
        schedule_digest: digest,
        injections,
        stats: fx.stats(),
        violations: all,
        tolerated_errors: tolerated.load(Ordering::Relaxed),
    };
    drop(bsfs);
    let _ = std::fs::remove_dir_all(&persist_dir);
    report
}

fn d(s: &str) -> DfsPath {
    DfsPath::new(s).expect("static path")
}

/// Seed-derived wordcount corpus: a few hundred lines over a small
/// vocabulary, so reduce keys collide heavily (the interesting case).
fn corpus(seed: u64) -> String {
    const VOCAB: [&str; 12] = [
        "append", "blob", "chunk", "commit", "fault", "lease", "page", "quiesce", "reaper",
        "shard", "snapshot", "version",
    ];
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0_97_05);
    let mut text = String::new();
    for _ in 0..300 {
        for i in 0..6 {
            if i > 0 {
                text.push(' ');
            }
            text.push_str(VOCAB[rng.gen_range(0..VOCAB.len())]);
        }
        text.push('\n');
    }
    text
}

fn drive_wordcount(p: &Proc, fs: &Arc<dyn FileSystem>, seed: u64, viols: &Mutex<Vec<String>>) {
    let text = corpus(seed);
    let mr = MrCluster::start(p.fabric(), fs.clone(), MrConfig::compact(p.fabric().spec()));
    fs.write_file(
        p,
        &d("/in/corpus"),
        Payload::from_vec(text.clone().into_bytes()),
    )
    .expect("input write precedes the fault window");
    let job = JobConf {
        name: "chaos-wordcount".into(),
        inputs: vec![d("/in/corpus")],
        output_dir: d("/out"),
        num_reducers: 2,
        output_mode: OutputMode::SharedAppendFile,
        user: workloads::wordcount::user_fns(),
        ghost: None,
        shuffle: mapreduce::ShuffleTuning::default(),
    };
    let _ = mr.submit(job).wait(p);
    let out = fs
        .read_file(p, &d("/out/result"))
        .expect("job output readable");
    mr.shutdown();
    verify_wordcount_output(&text, out.bytes(), viols);
}

/// Compare a wordcount job's `word TAB count` output against the model
/// oracle (which is also, exactly, the fault-free run's content).
fn verify_wordcount_output(text: &str, out: &[u8], viols: &Mutex<Vec<String>>) {
    let expected = workloads::wordcount::reference_counts(text);
    let mut got: HashMap<String, u64> = HashMap::new();
    for line in out.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
        let Some(tab) = line.iter().position(|&b| b == b'\t') else {
            viols.lock().push(format!(
                "wordcount output line without tab: {:?}",
                String::from_utf8_lossy(line)
            ));
            continue;
        };
        let word = String::from_utf8_lossy(&line[..tab]).into_owned();
        let count: u64 = match std::str::from_utf8(&line[tab + 1..]).unwrap_or("").parse() {
            Ok(c) => c,
            Err(_) => {
                viols
                    .lock()
                    .push(format!("wordcount count unparsable for {word:?}"));
                continue;
            }
        };
        if got.insert(word.clone(), count).is_some() {
            viols
                .lock()
                .push(format!("wordcount word {word:?} appears twice in output"));
        }
    }
    if got != expected {
        viols.lock().push(format!(
            "wordcount output disagrees with oracle: {} words counted, {} expected",
            got.len(),
            expected.len()
        ));
    }
}

/// Shuffle storm: wordcount over the seed corpus with maps ≫ nodes (the
/// 256-byte chaos blocks split it ~40 ways on 8 nodes), tier-2 combining on
/// an eager flush cadence so combined segments stream out mid-phase, while
/// the scheduled map-output losses wipe node spools mid-shuffle and force
/// re-runs through the idempotent buffer. The quiescence invariant is exact:
/// the surviving output must equal the fault-free oracle.
fn drive_shuffle_storm(
    p: &Proc,
    fs: &Arc<dyn FileSystem>,
    seed: u64,
    viols: &Mutex<Vec<String>>,
    losses: &[(u64, NodeId)],
) {
    let text = corpus(seed);
    let mr = MrCluster::start(p.fabric(), fs.clone(), MrConfig::compact(p.fabric().spec()));
    fs.write_file(
        p,
        &d("/in/corpus"),
        Payload::from_vec(text.clone().into_bytes()),
    )
    .expect("input write precedes the fault window");
    // Losses fire on the schedule regardless of job progress: a wipe before
    // the first map or after the shuffle drained is a no-op by construction.
    let mr_loss = mr.clone();
    let losses2 = losses.to_vec();
    let losser = p
        .fabric()
        .spawn(NodeId(0), "map-output-losser", move |p: &Proc| {
            for (at, node) in losses2 {
                let now = p.now();
                if at > now {
                    p.sleep(at - now);
                }
                mr_loss.lose_map_outputs(node);
            }
        });
    let job = JobConf {
        name: "chaos-shuffle-storm".into(),
        inputs: vec![d("/in/corpus")],
        output_dir: d("/out"),
        num_reducers: 3,
        output_mode: OutputMode::SharedAppendFile,
        user: workloads::wordcount::user_fns(),
        ghost: None,
        shuffle: mapreduce::ShuffleTuning {
            node_combine: true,
            flush_tasks: Some(2), // eager: combined segments stream mid-phase
            flush_bytes: None,
        },
    };
    let result = mr.submit(job).wait(p);
    // Join before shutdown so no wipe races the inbox close.
    losser.join(p);
    let out = fs
        .read_file(p, &d("/out/result"))
        .expect("job output readable");
    mr.shutdown();
    if u64::from(result.maps) <= u64::from(NODES) {
        viols.lock().push(format!(
            "shuffle storm needs maps ({}) over nodes ({NODES}) to stress the spool",
            result.maps
        ));
    }
    verify_wordcount_output(&text, out.bytes(), viols);
}

fn lastfm_spec(seed: u64) -> workloads::lastfm::LastFmSpec {
    workloads::lastfm::LastFmSpec {
        records_a: 200,
        records_b: 160,
        distinct_keys: 40,
        overlap: 0.5,
        seed: seed ^ 0x1A_57_F0,
    }
}

fn drive_datajoin(p: &Proc, fs: &Arc<dyn FileSystem>, seed: u64, viols: &Mutex<Vec<String>>) {
    let spec = lastfm_spec(seed);
    let mr = MrCluster::start(p.fabric(), fs.clone(), MrConfig::compact(p.fabric().spec()));
    let (a, b) = workloads::lastfm::write_inputs(&**fs, p, &d("/in"), &spec)
        .expect("input writes precede the fault window");
    let job = JobConf {
        name: "chaos-datajoin".into(),
        inputs: vec![a, b],
        output_dir: d("/out"),
        num_reducers: 2,
        output_mode: OutputMode::SharedAppendFile,
        user: workloads::datajoin::user_fns(),
        ghost: None,
        shuffle: mapreduce::ShuffleTuning::default(),
    };
    let _ = mr.submit(job).wait(p);
    let out = fs
        .read_file(p, &d("/out/result"))
        .expect("job output readable");
    mr.shutdown();

    let mut lines: Vec<String> = out
        .bytes()
        .split(|&b| b == b'\n')
        .filter(|l| !l.is_empty())
        .map(|l| String::from_utf8_lossy(l).into_owned())
        .collect();
    lines.sort();
    let oracle = workloads::datajoin::reference_join(
        &workloads::lastfm::generate(&spec, 0),
        &workloads::lastfm::generate(&spec, 1),
    );
    if lines != oracle {
        viols.lock().push(format!(
            "datajoin output disagrees with oracle: {} lines joined, {} expected",
            lines.len(),
            oracle.len()
        ));
    }
}

const CHURN_WRITERS: u32 = 4;
const CHURN_APPENDS: u32 = 8;
const BLOCK: usize = 64;

/// Tag byte of writer `w`'s `k`-th append: unique across the whole run.
fn tag(w: u32, k: u32) -> u8 {
    (w * 16 + k) as u8
}

/// Concurrent BSFS churn under faults, tolerating per-operation errors:
/// each writer appends tagged uniform blocks to a private file and to one
/// shared file, reads verify nothing tore, writer 0 deletes and recreates
/// its private file mid-run. The paper's atomic-append claim, adversarial.
fn drive_churn(
    p: &Proc,
    fs: &Arc<dyn FileSystem>,
    _seed: u64,
    viols: &Mutex<Vec<String>>,
    tolerated: &Arc<AtomicU64>,
) {
    let mut handles = Vec::new();
    for w in 0..CHURN_WRITERS {
        let fs = fs.clone();
        let tol = tolerated.clone();
        let viols_w: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let vw = viols_w.clone();
        let h = p.fabric().spawn(
            NodeId(1 + w % (NODES - 1)),
            format!("churn-writer-{w}"),
            move |p: &Proc| {
                let private = d(&format!("/chaos/private-{w}"));
                let shared = d("/chaos/shared");
                let step = HORIZON_NS / (CHURN_APPENDS as u64 + 2);
                for k in 0..CHURN_APPENDS {
                    // Spread appends across the fault horizon, staggered
                    // per writer so injections land mid-operation.
                    p.sleep(step / 2 + (w as u64 * step) / CHURN_WRITERS as u64);
                    for (path, is_shared) in [(&private, false), (&shared, true)] {
                        // A failed create is tolerated: either the create
                        // race on the shared file was lost or a namespace
                        // op hit a faulted service.
                        if !fs.exists(p, path) && fs.write_file(p, path, Payload::empty()).is_err()
                        {
                            tol.fetch_add(1, Ordering::Relaxed);
                        }
                        let block = Payload::from_vec(vec![tag(w, k); BLOCK]);
                        if fs.append_all(p, path, block).is_err() {
                            tol.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        if k % 3 == 2 && !is_shared {
                            match fs.read_file(p, path) {
                                Ok(data) => {
                                    check_blocks(&vw, path, data.bytes(), Some(w));
                                }
                                Err(_) => {
                                    tol.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    if w == 0 && k == CHURN_APPENDS / 2 {
                        // Delete mid-run; the file is recreated on the next
                        // iteration, exercising registry retire + GC.
                        if fs.delete(p, &private, false).is_err() {
                            tol.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                p.sleep(HORIZON_NS.saturating_sub(p.now()) + 50 * MILLIS);
                // Final audit, after every fault healed: both files must be
                // readable and well-formed.
                for (path, writer) in [(&private, Some(w)), (&shared, None)] {
                    match fs.read_file(p, path) {
                        Ok(data) => check_blocks(&vw, path, data.bytes(), writer),
                        Err(e) => vw
                            .lock()
                            .push(format!("churn: {path} unreadable after heal: {e}")),
                    }
                }
            },
        );
        handles.push((h, viols_w));
    }
    for (h, vw) in handles {
        h.join(p);
        viols.lock().extend(vw.lock().iter().cloned());
    }
}

const STORM_WRITERS: u32 = 2;
const STORM_READERS: u32 = 6;
const STORM_ROUNDS: u64 = 12;

/// Reader storm: `STORM_WRITERS` writers append tagged blocks to one file
/// each during the first half of the horizon, while `STORM_READERS` readers
/// loop full-file reads across the whole horizon — the cached,
/// replica-preferring read path under replica crashes and restarts. Reads
/// that fail mid-storm are tolerated; every successful read must parse as
/// well-formed tagged blocks of the owning writer, and a post-heal audit
/// requires every file readable.
fn drive_reader_storm(
    p: &Proc,
    fs: &Arc<dyn FileSystem>,
    _seed: u64,
    viols: &Mutex<Vec<String>>,
    tolerated: &Arc<AtomicU64>,
) {
    let mut handles = Vec::new();
    for w in 0..STORM_WRITERS {
        let fs = fs.clone();
        let tol = tolerated.clone();
        let h = p.fabric().spawn(
            NodeId(1 + w % (NODES - 1)),
            format!("storm-writer-{w}"),
            move |p: &Proc| {
                let path = d(&format!("/storm/file-{w}"));
                let step = (HORIZON_NS / 2) / (CHURN_APPENDS as u64 + 1);
                for k in 0..CHURN_APPENDS {
                    p.sleep(step);
                    // A failed create/append under a faulted service is
                    // tolerated; the create retries next iteration.
                    if !fs.exists(p, &path) && fs.write_file(p, &path, Payload::empty()).is_err() {
                        tol.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let block = Payload::from_vec(vec![tag(w, k); BLOCK]);
                    if fs.append_all(p, &path, block).is_err() {
                        tol.fetch_add(1, Ordering::Relaxed);
                    }
                }
            },
        );
        handles.push((h, Arc::new(Mutex::new(Vec::new()))));
    }
    for r in 0..STORM_READERS {
        let fs = fs.clone();
        let tol = tolerated.clone();
        let vw: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let vw2 = vw.clone();
        let h = p.fabric().spawn(
            NodeId(1 + r % (NODES - 1)),
            format!("storm-reader-{r}"),
            move |p: &Proc| {
                let step = HORIZON_NS / (STORM_ROUNDS + 2);
                for i in 0..STORM_ROUNDS {
                    // Stagger readers so fault windows land mid-read for
                    // some of them every round.
                    p.sleep(step / 2 + (r as u64 * step) / (2 * STORM_READERS as u64));
                    let w = (i as u32 + r) % STORM_WRITERS;
                    let path = d(&format!("/storm/file-{w}"));
                    if !fs.exists(p, &path) {
                        continue; // writer hasn't created it yet
                    }
                    match fs.read_file(p, &path) {
                        Ok(data) => check_blocks(&vw2, &path, data.bytes(), Some(w)),
                        Err(_) => {
                            tol.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                // Post-heal audit: every storm file that exists must be
                // readable and well-formed (a file can only be missing if
                // every one of its writer's creates was tolerated away).
                p.sleep(HORIZON_NS.saturating_sub(p.now()) + 50 * MILLIS);
                for w in 0..STORM_WRITERS {
                    let path = d(&format!("/storm/file-{w}"));
                    if !fs.exists(p, &path) {
                        continue;
                    }
                    match fs.read_file(p, &path) {
                        Ok(data) => check_blocks(&vw2, &path, data.bytes(), Some(w)),
                        Err(e) => vw2
                            .lock()
                            .push(format!("storm: {path} unreadable after heal: {e}")),
                    }
                }
            },
        );
        handles.push((h, vw));
    }
    for (h, vw) in handles {
        h.join(p);
        viols.lock().extend(vw.lock().iter().cloned());
    }
}

/// Verify a churn file's bytes: length a multiple of the block size (no
/// torn append), every block uniform (no interleaving inside a block), tags
/// valid, per-writer sequence numbers strictly increasing (publication
/// order), no duplicate blocks.
fn check_blocks(
    viols: &Mutex<Vec<String>>,
    path: &DfsPath,
    bytes: &[u8],
    only_writer: Option<u32>,
) {
    if !bytes.len().is_multiple_of(BLOCK) {
        viols.lock().push(format!(
            "churn: {path} length {} is not a multiple of the {BLOCK}-byte block (torn append)",
            bytes.len()
        ));
        return;
    }
    let mut last_k: HashMap<u32, u32> = HashMap::new();
    let mut seen: Vec<u8> = Vec::new();
    for (i, block) in bytes.chunks(BLOCK).enumerate() {
        let t = block[0];
        if block.iter().any(|&b| b != t) {
            viols.lock().push(format!(
                "churn: {path} block {i} is not uniform (torn append)"
            ));
            continue;
        }
        let (w, k) = (t as u32 / 16, t as u32 % 16);
        if w >= CHURN_WRITERS || k >= CHURN_APPENDS {
            viols
                .lock()
                .push(format!("churn: {path} block {i} has invalid tag {t:#x}"));
            continue;
        }
        if let Some(ow) = only_writer {
            if w != ow {
                viols.lock().push(format!(
                    "churn: {path} block {i} written by writer {w}, expected only {ow}"
                ));
            }
        }
        if seen.contains(&t) {
            viols.lock().push(format!(
                "churn: {path} block {i} duplicates append (w={w}, k={k})"
            ));
        }
        seen.push(t);
        if let Some(&prev) = last_k.get(&w) {
            if k <= prev {
                viols.lock().push(format!(
                    "churn: {path} writer {w}'s appends out of order (k={k} after k={prev})"
                ));
            }
        }
        last_k.insert(w, k);
    }
}

#[cfg(test)]
mod tests {
    use blobseer::{Fault, FaultTarget};

    use super::*;

    /// The sweep's own budgets must actually draw crash-restart windows —
    /// otherwise the recovery path would pass the sweep vacuously.
    #[test]
    fn runner_budgets_draw_crash_restarts() {
        let spec = ClusterSpec::tiny(NODES);
        let (mut provider_restarts, mut meta_restarts, mut replica_restarts) =
            (0usize, 0usize, 0usize);
        for seed in 0..16 {
            for w in Workload::ALL {
                let layout = layout_for(w, &spec);
                let sched = ChaosSchedule::generate(&budget_for(w, &layout), seed);
                for ev in &sched.events {
                    if let ChaosAction::Inject(t, Fault::CrashRestart) = ev.action {
                        match t {
                            FaultTarget::Provider(_) => provider_restarts += 1,
                            FaultTarget::MetaServer(_) => {
                                assert_eq!(w, Workload::BsfsChurn, "meta restarts are churn-only");
                                meta_restarts += 1;
                            }
                            FaultTarget::ReadReplica(_) => {
                                assert_eq!(
                                    w,
                                    Workload::ReaderStorm,
                                    "replica restarts are storm-only"
                                );
                                replica_restarts += 1;
                            }
                            t => panic!("crash-restart drawn for unsupported target {t}"),
                        }
                    }
                }
            }
        }
        assert!(provider_restarts > 0, "no provider crash-restart drawn");
        assert!(meta_restarts > 0, "no meta-server crash-restart drawn");
        assert!(replica_restarts > 0, "no read-replica crash-restart drawn");
    }
}
