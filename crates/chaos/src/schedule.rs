//! Seeded fault schedules: a [`ChaosSchedule`] is a deterministic function
//! of `(ChaosConfig, seed)` — the same seed always produces the byte-same
//! schedule, so any chaos failure replays exactly from its seed.
//!
//! A schedule is a time-ordered list of events over a fault *budget*:
//! service crash/pause windows (each `Inject` paired with a `Heal`, all
//! healed before the horizon) plus windowed network faults (delays, drops,
//! transient partitions — self-expiring by construction). The generator
//! enforces the survivability constraints the workloads rely on:
//!
//! * per-target windows never overlap (heals are flag flips, not
//!   reference-counted — overlapping windows on one target would heal
//!   early);
//! * at most `max_concurrent_provider_crashes` providers are down at any
//!   instant (callers set this to `replication - 1`, so every page keeps a
//!   live replica);
//! * network fault windows are bounded by `max_net_fault_ns` (callers keep
//!   this far under the write timeout, so a stalled transfer never expires
//!   a reservation lease).

use blobseer::{Fault, FaultTarget};
use fabric::{NetFault, NodeId, NodeSet, MILLIS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Domain-separates the schedule RNG from the fabric's own seed streams.
const SCHEDULE_SALT: u64 = 0x5EED_5C4E_D01E_0001;

/// Fault budget for one chaos run. Counts are *attempts*: a draw that would
/// violate an overlap constraint is retried a few times, then dropped, so
/// the realized schedule may be slightly smaller.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// All fault windows fall inside `[0, horizon_ns)`.
    pub horizon_ns: u64,
    /// Nodes in the cluster (network fault endpoints are drawn from these).
    pub nodes: u32,
    /// Data providers in the deployment (crash targets).
    pub providers: usize,
    /// Metadata servers in the deployment (crash targets).
    pub meta_servers: usize,
    /// Provider crash/revive windows to attempt.
    pub provider_crashes: usize,
    /// Hard cap on simultaneously-crashed providers (`replication - 1` for
    /// read survivability; 0 disables provider crashes entirely).
    pub max_concurrent_provider_crashes: usize,
    /// Meta-server crash windows to attempt (only error-tolerant workloads
    /// should allow these — a metadata outage fails in-flight writes).
    pub meta_crashes: usize,
    /// Version-manager pause windows to attempt.
    pub vm_pauses: usize,
    /// Reaper pause windows to attempt.
    pub reaper_pauses: usize,
    /// Provider crash-restart windows to attempt (`Fault::CrashRestart`:
    /// the process loses all memory, the heal restarts it from its pstore
    /// directory). Only meaningful on persistent deployments; counts
    /// against the same concurrency cap as plain provider crashes — a wiped
    /// provider is just as down as a crashed one.
    pub provider_restarts: usize,
    /// Meta-server crash-restart windows to attempt (persistent
    /// deployments; a metadata outage fails in-flight writes, so only
    /// error-tolerant workloads should allow these).
    pub meta_restarts: usize,
    /// Dedicated read replicas in the deployment (crash targets for the
    /// replica fault classes; 0 when the layout runs none).
    pub read_replicas: usize,
    /// Read-replica crash windows to attempt. Losing a replica only
    /// degrades read capacity — reads fail over to the primaries — so these
    /// never count against the provider crash concurrency cap.
    pub replica_crashes: usize,
    /// Read-replica crash-restart windows to attempt (persistent
    /// deployments; the wiped replica recovers its durable pages on heal
    /// and the next background sync round re-copies the rest).
    pub replica_restarts: usize,
    /// Network fault windows (delay / drop / partition) to attempt.
    pub net_faults: usize,
    /// Map-output-loss events to attempt (a node's shuffle spool is wiped
    /// mid-job; the jobtracker re-queues the buried tasks). Instantaneous —
    /// no heal window. Applied by MapReduce workload drivers via
    /// `MrCluster::lose_map_outputs`; the generic injector skips them.
    pub map_output_losses: usize,
    /// Service fault windows last `[max/4, max]` of this.
    pub max_service_fault_ns: u64,
    /// Network fault windows last `[max/4, max]` of this. Keep far below
    /// the write timeout: a partition stalls transfers for its whole window.
    pub max_net_fault_ns: u64,
}

impl ChaosConfig {
    /// A budget with every fault class disabled (fault-free control runs).
    pub fn quiet(horizon_ns: u64, nodes: u32, providers: usize, meta_servers: usize) -> Self {
        ChaosConfig {
            horizon_ns,
            nodes,
            providers,
            meta_servers,
            provider_crashes: 0,
            max_concurrent_provider_crashes: 0,
            meta_crashes: 0,
            vm_pauses: 0,
            reaper_pauses: 0,
            provider_restarts: 0,
            meta_restarts: 0,
            read_replicas: 0,
            replica_crashes: 0,
            replica_restarts: 0,
            net_faults: 0,
            map_output_losses: 0,
            max_service_fault_ns: 200 * MILLIS,
            max_net_fault_ns: 50 * MILLIS,
        }
    }
}

/// One scheduled action.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosAction {
    /// Inject a service fault (always paired with a later [`Self::Heal`]).
    Inject(FaultTarget, Fault),
    /// Heal a previously injected service fault.
    Heal(FaultTarget),
    /// Install a windowed network fault (self-expiring).
    Net(NetFault),
    /// Wipe a node's map-output spool (instantaneous, no heal). Only
    /// MapReduce workload drivers act on this; the injector skips it.
    LoseMapOutputs(NodeId),
}

/// An action at a point in virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosEvent {
    pub at_ns: u64,
    pub action: ChaosAction,
}

/// A deterministic, time-ordered fault schedule.
#[derive(Debug, Clone)]
pub struct ChaosSchedule {
    pub seed: u64,
    pub events: Vec<ChaosEvent>,
}

/// A service fault window accepted by the generator.
struct Window {
    target: FaultTarget,
    fault: Fault,
    start: u64,
    end: u64,
}

fn overlaps(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

impl ChaosSchedule {
    /// Generate the schedule for `(cfg, seed)`. Pure function of its
    /// arguments: same inputs, byte-same schedule.
    pub fn generate(cfg: &ChaosConfig, seed: u64) -> ChaosSchedule {
        let mut rng = StdRng::seed_from_u64(seed ^ SCHEDULE_SALT);
        let mut windows: Vec<Window> = Vec::new();
        let draw_window = |rng: &mut StdRng, max_ns: u64| -> (u64, u64) {
            let lo = (max_ns / 4).max(1);
            let dur = rng.gen_range(lo..max_ns.max(lo + 1));
            let latest_start = cfg.horizon_ns.saturating_sub(dur).max(1);
            let start = rng.gen_range(0..latest_start);
            (start, start + dur)
        };

        // Service fault windows, one class at a time. Draw order is part of
        // the schedule's identity — never reorder these; new classes are
        // only ever APPENDED, so a budget that zeroes them reproduces the
        // schedules generated before they existed.
        let classes: [(usize, Fault); 8] = [
            (cfg.provider_crashes, Fault::Crash),
            (cfg.meta_crashes, Fault::Crash),
            (cfg.vm_pauses, Fault::Pause),
            (cfg.reaper_pauses, Fault::Pause),
            (cfg.provider_restarts, Fault::CrashRestart),
            (cfg.meta_restarts, Fault::CrashRestart),
            (cfg.replica_crashes, Fault::Crash),
            (cfg.replica_restarts, Fault::CrashRestart),
        ];
        for (class, &(count, fault)) in classes.iter().enumerate() {
            for _ in 0..count {
                for _attempt in 0..8 {
                    let target = match class {
                        // A wiped provider is as down as a crashed one:
                        // restarts share the crash concurrency cap so every
                        // page keeps a live replica either way.
                        0 | 4 => {
                            if cfg.providers == 0 || cfg.max_concurrent_provider_crashes == 0 {
                                break;
                            }
                            FaultTarget::Provider(rng.gen_range(0..cfg.providers))
                        }
                        1 | 5 => {
                            if cfg.meta_servers == 0 {
                                break;
                            }
                            FaultTarget::MetaServer(rng.gen_range(0..cfg.meta_servers))
                        }
                        2 => FaultTarget::VersionManager,
                        3 => FaultTarget::Reaper,
                        // Replica faults never touch durability (primaries
                        // keep every byte), so they skip the provider
                        // concurrency cap entirely.
                        _ => {
                            if cfg.read_replicas == 0 {
                                break;
                            }
                            FaultTarget::ReadReplica(rng.gen_range(0..cfg.read_replicas))
                        }
                    };
                    let (start, end) = draw_window(&mut rng, cfg.max_service_fault_ns);
                    let same_target_clash = windows
                        .iter()
                        .any(|w| w.target == target && overlaps((w.start, w.end), (start, end)));
                    let concurrent_provider_crashes = windows
                        .iter()
                        .filter(|w| {
                            matches!(w.target, FaultTarget::Provider(_))
                                && overlaps((w.start, w.end), (start, end))
                        })
                        .count();
                    let provider_cap_hit = matches!(target, FaultTarget::Provider(_))
                        && concurrent_provider_crashes >= cfg.max_concurrent_provider_crashes;
                    if same_target_clash || provider_cap_hit {
                        continue;
                    }
                    windows.push(Window {
                        target,
                        fault,
                        start,
                        end,
                    });
                    break;
                }
            }
        }

        let mut events: Vec<ChaosEvent> = Vec::new();
        for w in &windows {
            events.push(ChaosEvent {
                at_ns: w.start,
                action: ChaosAction::Inject(w.target, w.fault),
            });
            events.push(ChaosEvent {
                at_ns: w.end,
                action: ChaosAction::Heal(w.target),
            });
        }

        // Network fault windows: self-expiring, so no pairing or overlap
        // bookkeeping needed. Partitions are kept node<->node (never
        // node<->Any) so no service is ever fully unreachable.
        for _ in 0..cfg.net_faults {
            if cfg.nodes < 2 {
                break;
            }
            let (from, until) = {
                let lo = (cfg.max_net_fault_ns / 4).max(1);
                let dur = rng.gen_range(lo..cfg.max_net_fault_ns.max(lo + 1));
                let start = rng.gen_range(0..cfg.horizon_ns.saturating_sub(dur).max(1));
                (start, start + dur)
            };
            let a = NodeId(rng.gen_range(0..cfg.nodes));
            let mut b = NodeId(rng.gen_range(0..cfg.nodes));
            while b == a {
                b = NodeId(rng.gen_range(0..cfg.nodes));
            }
            let fault = match rng.gen_range(0..3u32) {
                0 => NetFault::delay(
                    from,
                    until,
                    NodeSet::One(a),
                    NodeSet::Any,
                    rng.gen_range(MILLIS..5 * MILLIS),
                ),
                1 => NetFault::drop(
                    from,
                    until,
                    NodeSet::One(a),
                    NodeSet::Any,
                    rng.gen_range(0.05..0.30),
                    rng.gen_range(MILLIS..3 * MILLIS),
                ),
                _ => NetFault::partition(from, until, NodeSet::One(a), NodeSet::One(b)),
            };
            events.push(ChaosEvent {
                at_ns: from,
                action: ChaosAction::Net(fault),
            });
        }

        // Map-output losses: instantaneous wipes of one node's shuffle
        // spool, drawn APPENDED to every earlier class so a zero budget
        // reproduces pre-existing schedules byte-for-byte.
        for _ in 0..cfg.map_output_losses {
            if cfg.nodes == 0 {
                break;
            }
            let at_ns = rng.gen_range(0..cfg.horizon_ns.max(1));
            let node = NodeId(rng.gen_range(0..cfg.nodes));
            events.push(ChaosEvent {
                at_ns,
                action: ChaosAction::LoseMapOutputs(node),
            });
        }

        // Stable sort: simultaneous events keep generation order.
        events.sort_by_key(|e| e.at_ns);
        ChaosSchedule { seed, events }
    }

    /// Human-readable rendering, one line per event. This text *is* the
    /// schedule's identity: [`Self::digest`] hashes it.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "chaos schedule seed={:#x}", self.seed);
        for ev in &self.events {
            match &ev.action {
                ChaosAction::Inject(t, f) => {
                    let _ = writeln!(out, "  t={:>12}ns inject {t} {f}", ev.at_ns);
                }
                ChaosAction::Heal(t) => {
                    let _ = writeln!(out, "  t={:>12}ns heal   {t}", ev.at_ns);
                }
                ChaosAction::Net(nf) => {
                    let _ = writeln!(out, "  t={:>12}ns net    {nf:?}", ev.at_ns);
                }
                ChaosAction::LoseMapOutputs(n) => {
                    let _ = writeln!(out, "  t={:>12}ns lose-map-outputs node{}", ev.at_ns, n.0);
                }
            }
        }
        out
    }

    /// FNV-1a over [`Self::render`]: a stable fingerprint for replay
    /// assertions ("same seed, same schedule").
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.render().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Number of service fault injections (not heals, not net faults).
    pub fn injections(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.action, ChaosAction::Inject(..)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_cfg() -> ChaosConfig {
        ChaosConfig {
            horizon_ns: 2_000 * MILLIS,
            nodes: 8,
            providers: 6,
            meta_servers: 2,
            provider_crashes: 3,
            max_concurrent_provider_crashes: 1,
            meta_crashes: 2,
            vm_pauses: 2,
            reaper_pauses: 1,
            provider_restarts: 2,
            meta_restarts: 1,
            read_replicas: 2,
            replica_crashes: 2,
            replica_restarts: 1,
            net_faults: 5,
            map_output_losses: 2,
            max_service_fault_ns: 200 * MILLIS,
            max_net_fault_ns: 50 * MILLIS,
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = busy_cfg();
        let a = ChaosSchedule::generate(&cfg, 42);
        let b = ChaosSchedule::generate(&cfg, 42);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.digest(), b.digest());
        let c = ChaosSchedule::generate(&cfg, 43);
        assert_ne!(a.digest(), c.digest(), "different seeds must differ");
    }

    #[test]
    fn every_injection_is_healed_inside_the_horizon() {
        let cfg = busy_cfg();
        for seed in 0..50 {
            let s = ChaosSchedule::generate(&cfg, seed);
            let mut open: Vec<FaultTarget> = Vec::new();
            for ev in &s.events {
                assert!(ev.at_ns < cfg.horizon_ns, "event past horizon");
                match &ev.action {
                    ChaosAction::Inject(t, _) => {
                        assert!(!open.contains(t), "overlapping windows on {t}");
                        open.push(*t);
                    }
                    ChaosAction::Heal(t) => {
                        let i = open.iter().position(|x| x == t).expect("heal w/o inject");
                        open.remove(i);
                    }
                    ChaosAction::Net(nf) => {
                        assert!(nf.until_ns <= cfg.horizon_ns, "net window past horizon");
                    }
                    ChaosAction::LoseMapOutputs(_) => {} // instantaneous, no heal
                }
            }
            assert!(open.is_empty(), "unhealed faults at horizon: {open:?}");
        }
    }

    #[test]
    fn provider_crash_concurrency_never_exceeds_cap() {
        // Crash-restart windows count against the same cap: a wiped
        // provider is down exactly like a crashed one.
        let mut cfg = busy_cfg();
        cfg.provider_crashes = 6;
        cfg.provider_restarts = 6;
        for seed in 0..50 {
            let s = ChaosSchedule::generate(&cfg, seed);
            let mut down = 0usize;
            for ev in &s.events {
                match &ev.action {
                    ChaosAction::Inject(FaultTarget::Provider(_), _) => {
                        down += 1;
                        assert!(down <= cfg.max_concurrent_provider_crashes);
                    }
                    ChaosAction::Heal(FaultTarget::Provider(_)) => down -= 1,
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn zero_restart_budget_reproduces_pre_restart_schedules() {
        // The restart classes were APPENDED to the draw sequence, so a
        // budget that zeroes them must leave the RNG stream — and hence the
        // whole schedule — untouched relative to a config that never knew
        // about them.
        let mut with = busy_cfg();
        with.provider_restarts = 0;
        with.meta_restarts = 0;
        with.replica_restarts = 0;
        for seed in 0..20 {
            let s = ChaosSchedule::generate(&with, seed);
            assert!(s
                .events
                .iter()
                .all(|e| !matches!(e.action, ChaosAction::Inject(_, Fault::CrashRestart))));
        }
    }

    #[test]
    fn restart_budgets_draw_crash_restart_windows() {
        let cfg = busy_cfg();
        let mut saw_provider = false;
        let mut saw_meta = false;
        for seed in 0..20 {
            let s = ChaosSchedule::generate(&cfg, seed);
            for ev in &s.events {
                match ev.action {
                    ChaosAction::Inject(FaultTarget::Provider(_), Fault::CrashRestart) => {
                        saw_provider = true;
                    }
                    ChaosAction::Inject(FaultTarget::MetaServer(_), Fault::CrashRestart) => {
                        saw_meta = true;
                    }
                    _ => {}
                }
            }
        }
        assert!(saw_provider, "provider restarts never drawn in 20 seeds");
        assert!(saw_meta, "meta restarts never drawn in 20 seeds");
    }

    #[test]
    fn replica_budgets_draw_replica_windows() {
        let cfg = busy_cfg();
        let (mut crashes, mut restarts) = (false, false);
        for seed in 0..20 {
            let s = ChaosSchedule::generate(&cfg, seed);
            for ev in &s.events {
                if let ChaosAction::Inject(FaultTarget::ReadReplica(i), f) = ev.action {
                    assert!(i < cfg.read_replicas, "replica index out of range");
                    match f {
                        Fault::Crash => crashes = true,
                        Fault::CrashRestart => restarts = true,
                        Fault::Pause => panic!("replica pause is unsupported"),
                    }
                }
            }
        }
        assert!(crashes, "replica crashes never drawn in 20 seeds");
        assert!(restarts, "replica restarts never drawn in 20 seeds");
    }

    #[test]
    fn zero_replica_budget_draws_no_replica_faults() {
        // The replica classes were APPENDED to the draw sequence (schedule
        // identity is append-only): a budget that zeroes them must produce
        // schedules with no replica events at all.
        let mut cfg = busy_cfg();
        cfg.replica_crashes = 0;
        cfg.replica_restarts = 0;
        for seed in 0..20 {
            let s = ChaosSchedule::generate(&cfg, seed);
            assert!(s.events.iter().all(|e| !matches!(
                e.action,
                ChaosAction::Inject(FaultTarget::ReadReplica(_), _)
            )));
        }
    }

    #[test]
    fn map_output_loss_budget_draws_losses_and_zero_budget_draws_none() {
        let cfg = busy_cfg();
        let mut seen = false;
        for seed in 0..20 {
            let s = ChaosSchedule::generate(&cfg, seed);
            for ev in &s.events {
                if let ChaosAction::LoseMapOutputs(n) = ev.action {
                    assert!(n.0 < cfg.nodes, "loss node out of range");
                    seen = true;
                }
            }
        }
        assert!(seen, "map-output losses never drawn in 20 seeds");

        // The class was APPENDED to the draw sequence: a zero budget must
        // reproduce pre-existing schedules byte-for-byte.
        let mut without = busy_cfg();
        without.map_output_losses = 0;
        for seed in 0..20 {
            let a = ChaosSchedule::generate(&without, seed);
            assert!(a
                .events
                .iter()
                .all(|e| !matches!(e.action, ChaosAction::LoseMapOutputs(_))));
        }
    }

    #[test]
    fn quiet_config_yields_empty_schedule() {
        let s = ChaosSchedule::generate(&ChaosConfig::quiet(MILLIS, 8, 6, 2), 7);
        assert!(s.events.is_empty());
        assert_eq!(s.injections(), 0);
    }
}
