//! Tier-1 chaos suite: fault-free control runs, a seeded sweep across all
//! workloads, byte-exact replay determinism, and an env-var replay hook.
//!
//! Every failure message carries `(workload, seed)` and the exact command
//! that replays that single run:
//!
//! ```text
//! CHAOS_WORKLOAD=wordcount CHAOS_SEED=17 cargo test -q -p chaos \
//!     --test chaos_sweep replay_from_env -- --nocapture
//! ```

use chaos::{run_chaos, run_quiet, Workload};

/// Seeds per workload: 16 x 5 = 80 faulted runs in the sweep.
fn seeds_for(w: Workload) -> std::ops::Range<u64> {
    match w {
        Workload::Wordcount => 0..16,
        Workload::DataJoin => 0..16,
        Workload::BsfsChurn => 0..16,
        Workload::ReaderStorm => 0..16,
        Workload::ShuffleStorm => 0..16,
    }
}

/// A fault-free chaos run per workload must pass every invariant and
/// tolerate zero errors: anything it reports is a harness bug, not chaos.
#[test]
fn fault_free_runs_are_clean() {
    for w in Workload::ALL {
        let report = run_quiet(w, 1);
        report.assert_clean();
        assert_eq!(
            report.tolerated_errors, 0,
            "fault-free {w} run tolerated errors"
        );
        assert_eq!(report.injections, 0);
        assert_eq!(report.stats.net_fault_hits, 0);
    }
}

#[test]
fn sweep_wordcount() {
    sweep(Workload::Wordcount);
}

#[test]
fn sweep_datajoin() {
    sweep(Workload::DataJoin);
}

#[test]
fn sweep_bsfs_churn() {
    sweep(Workload::BsfsChurn);
}

#[test]
fn sweep_reader_storm() {
    sweep(Workload::ReaderStorm);
}

#[test]
fn sweep_shuffle_storm() {
    sweep(Workload::ShuffleStorm);
}

fn sweep(w: Workload) {
    let mut injections = 0;
    for seed in seeds_for(w) {
        let report = run_chaos(w, seed);
        report.assert_clean();
        injections += report.injections;
    }
    // The sweep must actually exercise faults: a generator regression that
    // silently empties every schedule would otherwise pass vacuously.
    let runs = seeds_for(w).count();
    assert!(
        injections >= runs,
        "{w} sweep injected only {injections} service faults over {runs} runs"
    );
}

/// Same `(workload, seed)` ⇒ identical schedule digest, identical fabric
/// counters (events, transfers, virtual time, fault hits — the whole
/// struct), identical violation list. This is the replay guarantee the
/// failure messages rely on.
#[test]
fn same_seed_replays_byte_identically() {
    for w in Workload::ALL {
        let a = run_chaos(w, 7);
        let b = run_chaos(w, 7);
        assert_eq!(
            a.schedule_digest, b.schedule_digest,
            "{w}: schedule digests diverged"
        );
        assert_eq!(a.stats, b.stats, "{w}: fabric counters diverged on replay");
        assert_eq!(
            a.violations, b.violations,
            "{w}: violations diverged on replay"
        );
        assert_eq!(a.tolerated_errors, b.tolerated_errors);
        let c = run_chaos(w, 8);
        assert_ne!(
            a.schedule_digest, c.schedule_digest,
            "{w}: different seeds produced the same schedule"
        );
    }
}

/// Replay hook: `CHAOS_WORKLOAD=<name> CHAOS_SEED=<n>` reruns exactly one
/// faulted run with its schedule printed. A no-op when the variables are
/// unset, so it is free in normal suite runs.
#[test]
fn replay_from_env() {
    let (Ok(w), Ok(s)) = (std::env::var("CHAOS_WORKLOAD"), std::env::var("CHAOS_SEED")) else {
        return;
    };
    let workload = Workload::parse(&w).unwrap_or_else(|| {
        panic!(
            "unknown CHAOS_WORKLOAD {w:?} \
             (want wordcount|datajoin|bsfs-churn|reader-storm|shuffle-storm)"
        )
    });
    let seed: u64 = s.parse().expect("CHAOS_SEED must be an integer");
    let report = run_chaos(workload, seed);
    println!(
        "replayed workload={workload} seed={seed}: digest={:#x}, {} injections, \
         {} tolerated errors, {} violations",
        report.schedule_digest,
        report.injections,
        report.tolerated_errors,
        report.violations.len()
    );
    report.assert_clean();
}
