//! Ablation A4 — append cost vs version-history depth.
//!
//! BlobSeer's promise is that an update pays for a root-to-leaf path, never
//! for the BLOB's history. This bench pins that: it drives one blob to
//! 10 000 versions and samples the per-append cost at depth 1 / 100 /
//! 1 000 / 10 000, in three currencies:
//!
//! * wall-clock ns per append (the planning CPU the descriptor index
//!   removed from O(V) to O(log V)),
//! * simulated ns per append (the modeled wire cost, batched),
//! * DHT node puts per append (== metadata tree path length).
//!
//! Appends necessarily grow the page count, so the tree deepens
//! logarithmically with depth; the flatness assertion therefore checks
//! wall-clock *per tree node written*. A second series does fixed-size
//! interior overwrites (constant tree depth) where raw per-update cost must
//! stay flat. Results land in `BENCH_history_depth.json` at the repo root —
//! the perf-trajectory baseline CI uploads for future PRs to diff.

use std::time::Instant;

use bench_suite::{json_num, print_table};
use blobseer::{BlobSeer, BlobSeerConfig, Layout};
use fabric::{ClusterSpec, Fabric, NodeId, Payload};

const PS: u64 = 1024;
const DEPTHS: [u64; 4] = [1, 100, 1_000, 10_000];
const WINDOW: u64 = 64;

#[derive(Clone, Copy)]
struct Point {
    depth: u64,
    wall_ns_per_op: f64,
    sim_ns_per_op: f64,
    puts_per_op: f64,
}

fn deploy() -> (Fabric, BlobSeer) {
    let fx = Fabric::sim(ClusterSpec::tiny(8));
    let layout = Layout::compact(fx.spec());
    let bs = BlobSeer::deploy(&fx, BlobSeerConfig::test_small(PS), layout).expect("deploy");
    (fx, bs)
}

fn total_puts(bs: &BlobSeer) -> u64 {
    bs.metadata_dht()
        .servers()
        .iter()
        .map(|s| s.op_counts().0)
        .sum()
}

/// Run `ops` updates via `step`, measuring the trailing `WINDOW` before each
/// checkpoint depth.
#[allow(clippy::disallowed_methods)] // reports wall vs sim time on purpose
fn run_series(
    bs: &BlobSeer,
    p: &fabric::Proc,
    step: &mut dyn FnMut(u64),
    checkpoints: &[u64],
) -> Vec<Point> {
    let mut points = Vec::new();
    let mut done = 0u64;
    for &depth in checkpoints {
        while done < depth.saturating_sub(WINDOW) {
            step(done);
            done += 1;
        }
        let window = depth - done;
        let puts0 = total_puts(bs);
        let sim0 = p.now();
        let wall0 = Instant::now();
        while done < depth {
            step(done);
            done += 1;
        }
        let w = window.max(1) as f64;
        points.push(Point {
            depth,
            wall_ns_per_op: wall0.elapsed().as_nanos() as f64 / w,
            sim_ns_per_op: (p.now() - sim0) as f64 / w,
            puts_per_op: (total_puts(bs) - puts0) as f64 / w,
        });
    }
    points
}

fn main() {
    // Series 1: appends (one page each); history depth == page count, so
    // the tree depth grows logarithmically alongside.
    let (fx, bs) = deploy();
    let bs2 = bs.clone();
    let append_points = {
        let h = fx.spawn(NodeId(1), "appender", move |p| {
            let c = bs2.client();
            let blob = c.create(p, None);
            let mut step = |_v: u64| {
                c.append(p, blob, Payload::ghost(PS)).unwrap();
            };
            run_series(&bs2, p, &mut step, &DEPTHS)
        });
        fx.run();
        h.take().unwrap()
    };

    // Series 2: interior overwrites of a fixed 128-page blob — constant
    // tree depth, so per-update cost must be flat in history depth alone.
    let (fx, bs) = deploy();
    let bs2 = bs.clone();
    let overwrite_points = {
        let h = fx.spawn(NodeId(1), "overwriter", move |p| {
            let c = bs2.client();
            let blob = c.create(p, None);
            c.append(p, blob, Payload::ghost(128 * PS)).unwrap();
            let mut step = |v: u64| {
                let page = v % 127; // keep the tail page out of play
                c.write(p, blob, page * PS, Payload::ghost(PS)).unwrap();
            };
            run_series(&bs2, p, &mut step, &[100, 1_000, 10_000])
        });
        fx.run();
        h.take().unwrap()
    };

    let rows = |pts: &[Point]| -> Vec<Vec<String>> {
        pts.iter()
            .map(|pt| {
                vec![
                    pt.depth.to_string(),
                    format!("{:.0}", pt.wall_ns_per_op),
                    format!("{:.0}", pt.wall_ns_per_op / pt.puts_per_op.max(1.0)),
                    format!("{:.0}", pt.sim_ns_per_op),
                    format!("{:.1}", pt.puts_per_op),
                ]
            })
            .collect()
    };
    print_table(
        "Ablation A4a: append cost vs history depth (1 page per append)",
        &[
            "depth",
            "wall ns/op",
            "wall ns/node",
            "sim ns/op",
            "DHT puts/op",
        ],
        &rows(&append_points),
    );
    print_table(
        "Ablation A4b: interior-overwrite cost vs history depth (128-page blob, constant tree)",
        &[
            "depth",
            "wall ns/op",
            "wall ns/node",
            "sim ns/op",
            "DHT puts/op",
        ],
        &rows(&overwrite_points),
    );

    let json = to_json(&append_points, &overwrite_points);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_history_depth.json"
    );
    // Diff BEFORE overwriting: a regressed run must die with the committed
    // baseline intact, not clobber it and pass on the next invocation. The
    // fresh numbers land in a `.new` side file first (what CI uploads when
    // the diff fails, so a deliberate re-record has the data) and are
    // promoted onto the canonical path only after the diff passes.
    let new_path = format!("{path}.new");
    std::fs::write(&new_path, &json).expect("write fresh bench record");
    match std::fs::read_to_string(path).ok() {
        None => println!("\nno committed baseline found; this run records the first one"),
        Some(base) => {
            diff_series(&base, "append_series", &append_points);
            diff_series(&base, "overwrite_series", &overwrite_points);
            println!("\nbaseline diff passed: sim time and DHT puts within tolerance per depth");
        }
    }
    std::fs::write(path, &json).expect("write BENCH_history_depth.json");
    let _ = std::fs::remove_file(&new_path);
    println!("wrote {path}");

    // Acceptance gates, flat (within 2x) from depth 100 to 10 000 instead
    // of the ~100x a linear rescan would cost. The hard 2x gates use the
    // DETERMINISTIC currencies (simulated wire time, DHT node puts) so a
    // noisy CI runner cannot fail them; wall-clock gets a loose 5x backstop
    // that still catches an O(V) regression (which would be ~50-100x) while
    // the committed JSON baseline records the precise wall numbers.
    let (a100, a10k) = (&append_points[1], &append_points[3]);
    let (o100, o10k) = (&overwrite_points[0], &overwrite_points[2]);
    assert!(
        a10k.sim_ns_per_op <= 2.0 * a100.sim_ns_per_op,
        "simulated append cost grew {:.0} -> {:.0} ns from depth 100 to 10k",
        a100.sim_ns_per_op,
        a10k.sim_ns_per_op,
    );
    assert!(
        o10k.sim_ns_per_op <= 2.0 * o100.sim_ns_per_op,
        "simulated fixed-tree overwrite cost grew {:.0} -> {:.0} ns from depth 100 to 10k",
        o100.sim_ns_per_op,
        o10k.sim_ns_per_op,
    );
    // The wire side: node puts per append track tree depth (~log), never V.
    assert!(
        a10k.puts_per_op <= 2.0 * a100.puts_per_op,
        "DHT puts per append grew {:.1} -> {:.1} from depth 100 to 10k",
        a100.puts_per_op,
        a10k.puts_per_op,
    );
    let per_node = |pt: &Point| pt.wall_ns_per_op / pt.puts_per_op.max(1.0);
    assert!(
        per_node(a10k) <= 5.0 * per_node(a100),
        "append planning wall cost per tree node grew {:.0} -> {:.0} ns from depth 100 to 10k",
        per_node(a100),
        per_node(a10k),
    );
    assert!(
        o10k.wall_ns_per_op <= 5.0 * o100.wall_ns_per_op,
        "fixed-tree overwrite wall cost grew {:.0} -> {:.0} ns from depth 100 to 10k",
        o100.wall_ns_per_op,
        o10k.wall_ns_per_op,
    );
    println!(
        "flatness gates passed: sim {:.2}x, puts {:.2}x, wall/node {:.2}x (append, depth 100 -> 10k)",
        a10k.sim_ns_per_op / a100.sim_ns_per_op,
        a10k.puts_per_op / a100.puts_per_op,
        per_node(a10k) / per_node(a100),
    );
}

/// Diff this run's DETERMINISTIC currencies (simulated wire time, DHT node
/// puts — exact for a fixed seed) against the committed baseline series;
/// wall-clock fields are recorded but never gated here. A legitimate cost
/// change re-records the committed JSON deliberately.
fn diff_series(base: &str, series: &str, pts: &[Point]) {
    let start = base
        .find(&format!("\"{series}\""))
        .expect("baseline series");
    let seg = &base[start..];
    let seg = &seg[..seg.find(']').expect("series closes")];
    for pt in pts {
        let obj = seg
            .split('{')
            .find(|o| json_num(o, "depth") == Some(pt.depth as f64))
            .unwrap_or_else(|| panic!("baseline {series} lacks depth {}", pt.depth));
        let base_sim = json_num(obj, "sim_ns_per_op").expect("baseline sim_ns_per_op");
        let base_puts = json_num(obj, "dht_puts_per_op").expect("baseline dht_puts_per_op");
        assert!(
            pt.sim_ns_per_op <= base_sim * 1.25,
            "{series} depth {}: simulated cost regressed {:.0} -> {:.0} ns/op vs baseline",
            pt.depth,
            base_sim,
            pt.sim_ns_per_op,
        );
        assert!(
            pt.puts_per_op <= base_puts + 2.0,
            "{series} depth {}: DHT puts regressed {:.2} -> {:.2} per op vs baseline",
            pt.depth,
            base_puts,
            pt.puts_per_op,
        );
    }
}

fn series_json(pts: &[Point]) -> String {
    let items: Vec<String> = pts
        .iter()
        .map(|pt| {
            format!(
                "    {{\"depth\": {}, \"wall_ns_per_op\": {:.1}, \"wall_ns_per_node\": {:.1}, \"sim_ns_per_op\": {:.1}, \"dht_puts_per_op\": {:.2}}}",
                pt.depth,
                pt.wall_ns_per_op,
                pt.wall_ns_per_op / pt.puts_per_op.max(1.0),
                pt.sim_ns_per_op,
                pt.puts_per_op
            )
        })
        .collect();
    format!("[\n{}\n  ]", items.join(",\n"))
}

fn to_json(appends: &[Point], overwrites: &[Point]) -> String {
    format!(
        "{{\n  \"bench\": \"abl_history_depth\",\n  \"page_size\": {PS},\n  \"window\": {WINDOW},\n  \"append_series\": {},\n  \"overwrite_series\": {}\n}}\n",
        series_json(appends),
        series_json(overwrites)
    )
}
