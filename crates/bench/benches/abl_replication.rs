//! Ablation A2 — page-level replication (paper §3.1.1 mentions BlobSeer
//! implements fault tolerance through page replication; the benchmarks run
//! unreplicated). Sweep the replication factor under 64 concurrent
//! appenders and verify the cost model: each replica is one more
//! client→provider stream.

use bench_suite::{fig3_point_on, paper_bsfs_with, print_table};
use blobseer::BlobSeerConfig;

fn main() {
    let mut rows = Vec::new();
    let mut first = None;
    for r in 1..=3usize {
        let config = BlobSeerConfig::paper().with_replication(r);
        let (fx, fs) = paper_bsfs_with(9100 + r as u64, config);
        let t = fig3_point_on(&fx, &fs, 64);
        let stored = fs.store().total_stored_bytes();
        first.get_or_insert(t);
        rows.push(vec![
            r.to_string(),
            format!("{t:.1}"),
            format!("{:.2}", first.unwrap() / t),
            format!("{:.1} GB", stored as f64 / 1e9),
        ]);
    }
    print_table(
        "Ablation A2: replication factor vs append throughput (64 appenders x 64 MB)",
        &[
            "replicas",
            "per-client MB/s",
            "slowdown vs r=1",
            "bytes stored",
        ],
        &rows,
    );
    println!(
        "\nnote: replicas are written by the client in parallel page streams, so r replicas \
         divide the writer's TX bandwidth roughly r ways — durability costs exactly what the \
         model predicts."
    );
}
