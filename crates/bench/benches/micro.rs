//! Criterion microbenchmarks of the core data structures: the versioned
//! segment-tree metadata (plan/traverse), the pstore persistence layer, the
//! partitioner and record codecs, and the max-min fair-sharing engine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use blobseer::meta::{collect_leaves, plan_write, NodeBody, NodeKey, PageRef, SnapshotInfo};
use blobseer::{BlobId, DescIndex, PageId, WriteDesc, WriteKind};
use fabric::NodeId;
use std::collections::HashMap;

const PS: u64 = 64 * 1024;

/// Build a history of `n` appends of 3 pages each; returns descriptors, the
/// incrementally-maintained descriptor index, and the complete node store.
fn history(n: u64) -> (Vec<WriteDesc>, DescIndex, HashMap<NodeKey, NodeBody>) {
    let blob = BlobId(1);
    let mut descs: Vec<WriteDesc> = Vec::new();
    let mut ix = DescIndex::new(PS);
    let mut store = HashMap::new();
    for v in 1..=n {
        let (tp, tb) = descs
            .last()
            .map(|d| (d.total_pages, d.total_bytes))
            .unwrap_or((0, 0));
        let k = 3u64;
        let desc = WriteDesc {
            version: v,
            kind: WriteKind::Append,
            page_lo: tp,
            page_hi: tp + k,
            byte_lo: tb,
            byte_hi: tb + k * PS,
            total_pages: tp + k,
            total_bytes: tb + k * PS,
        };
        let manifest: Vec<PageRef> = (0..k)
            .map(|i| PageRef {
                id: PageId(v, i),
                byte_len: PS,
                providers: vec![NodeId((v % 200) as u32)],
            })
            .collect();
        ix.apply(&desc);
        for (key, body) in plan_write(blob, &ix, &desc, &manifest) {
            store.insert(key, body);
        }
        descs.push(desc);
    }
    (descs, ix, store)
}

fn bench_meta(c: &mut Criterion) {
    let (descs, ix, store) = history(512);
    let last = *descs.last().unwrap();
    let manifest: Vec<PageRef> = (0..3)
        .map(|i| PageRef {
            id: PageId(9999, i),
            byte_len: PS,
            providers: vec![NodeId(7)],
        })
        .collect();
    let next = WriteDesc {
        version: last.version + 1,
        kind: WriteKind::Append,
        page_lo: last.total_pages,
        page_hi: last.total_pages + 3,
        byte_lo: last.total_bytes,
        byte_hi: last.total_bytes + 3 * PS,
        total_pages: last.total_pages + 3,
        total_bytes: last.total_bytes + 3 * PS,
    };

    c.bench_function("meta/index_apply_snapshot_after_512_versions", |b| {
        b.iter(|| {
            let mut ix2 = black_box(&ix).clone();
            ix2.apply(&next);
            black_box(ix2.version())
        });
    });

    c.bench_function("meta/plan_append_after_512_versions", |b| {
        let mut ix_next = ix.clone();
        ix_next.apply(&next);
        b.iter(|| {
            let nodes = plan_write(BlobId(1), black_box(&ix_next), &next, &manifest);
            black_box(nodes.len())
        });
    });

    c.bench_function("meta/traverse_full_snapshot_1536_pages", |b| {
        let snap = SnapshotInfo {
            version: last.version,
            total_pages: last.total_pages,
            total_bytes: last.total_bytes,
            page_size: PS,
        };
        b.iter(|| {
            let mut fetch =
                |keys: &[NodeKey]| Ok(keys.iter().map(|k| store.get(k).cloned()).collect());
            let hits = collect_leaves(&mut fetch, BlobId(1), &snap, 0, snap.total_bytes).unwrap();
            black_box(hits.len())
        });
    });

    c.bench_function("meta/point_lookup_one_page", |b| {
        let snap = SnapshotInfo {
            version: last.version,
            total_pages: last.total_pages,
            total_bytes: last.total_bytes,
            page_size: PS,
        };
        let off = snap.total_bytes / 2;
        b.iter(|| {
            let mut fetch =
                |keys: &[NodeKey]| Ok(keys.iter().map(|k| store.get(k).cloned()).collect());
            let hits = collect_leaves(&mut fetch, BlobId(1), &snap, off, off + 100).unwrap();
            black_box(hits.len())
        });
    });
}

fn bench_pstore(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("pstore-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = pstore::Store::open(&dir).unwrap();
    let value = vec![0xABu8; 4096];
    let mut i = 0u64;
    c.bench_function("pstore/put_4k", |b| {
        b.iter(|| {
            store.put(&i.to_le_bytes(), &value).unwrap();
            i += 1;
        });
    });
    store.put(b"probe", &value).unwrap();
    c.bench_function("pstore/get_4k", |b| {
        b.iter(|| black_box(store.get(b"probe").unwrap()));
    });
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_records(c: &mut Criterion) {
    use mapreduce::record::{decode_kvs, encode_kvs, sort_and_group};
    use mapreduce::KV;
    let kvs: Vec<KV> = (0..1000)
        .map(|i| KV::new(format!("user_{:04}", i % 200), format!("value-{i}")))
        .collect();
    c.bench_function("record/encode_1k", |b| {
        b.iter(|| black_box(encode_kvs(&kvs)));
    });
    let enc = encode_kvs(&kvs);
    c.bench_function("record/decode_1k", |b| {
        b.iter(|| black_box(decode_kvs(enc.bytes())));
    });
    c.bench_function("record/sort_group_1k", |b| {
        b.iter(|| black_box(sort_and_group(kvs.clone())));
    });
    c.bench_function("record/partitioner", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for kv in &kvs {
                acc = acc.wrapping_add(mapreduce::partition_for(&kv.key, 230));
            }
            black_box(acc)
        });
    });
}

fn bench_fabric(c: &mut Criterion) {
    use fabric::{ClusterSpec, Fabric, Payload};
    c.bench_function("fabric/100_concurrent_transfers_sim", |b| {
        b.iter(|| {
            let fx = Fabric::sim(ClusterSpec::tiny(64));
            for i in 0..100u32 {
                fx.spawn(NodeId(i % 64), format!("t{i}"), move |p| {
                    p.send_to(NodeId((i + 1) % 64), 10_000_000);
                });
            }
            fx.run();
            black_box(fx.now())
        });
    });
    c.bench_function("fabric/payload_slice_ghost", |b| {
        let p = Payload::ghost(1 << 30);
        b.iter(|| black_box(p.slice(12345, 4096).len()));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_meta, bench_pstore, bench_records, bench_fabric
);
criterion_main!(benches);
