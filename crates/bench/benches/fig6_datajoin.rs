//! Figure 6 — "Completion time of the data join application when varying
//! the number of reducers": the data join contrib application (2 × 320 MB
//! Last.fm-like input, ≈6.3 GB join output) on the 270-node cluster,
//! comparing original Hadoop + HDFS (one output file per reducer) against
//! modified Hadoop + BSFS (all reducers append to one shared file).
//!
//! Paper claims: (a) BSFS finishes in approximately the same time as HDFS —
//! the single shared output file costs nothing; (b) both curves stay
//! roughly constant because data join is computation-dominated; (c) BSFS
//! leaves ONE file where HDFS leaves R.
//!
//! On top of the paper sweep, a *shuffle-stress* point (maps ≫ nodes, the
//! regime fig6's 10-map workload never enters) measures the combined
//! shuffle: with the tier-2 node combine on, reducers pull at most one
//! segment per (map-node, partition) instead of one per (map task,
//! partition), so 48 maps on 8 nodes collapse 384 naive pulls into ≤ 64.
//! Results land in `BENCH_fig6_shuffle.json` at the repo root; the
//! committed copy is the baseline this driver diffs each run against
//! (deterministic sim currencies only), so a data-plane regression fails
//! the build.

use bench_suite::{
    fig6_point, fig6_shuffle_stress, json_num, json_series, print_table, relative_spread,
    Fig6System,
};

const BASELINE_TOLERANCE: f64 = 1.25;

fn main() {
    let reducers = [1u32, 10, 25, 50, 100, 150, 200, 230];
    let mut rows = Vec::new();
    let mut hdfs_series = Vec::new();
    let mut bsfs_series = Vec::new();
    let mut bsfs_transfers = Vec::new();
    for &r in &reducers {
        let hdfs = fig6_point(Fig6System::HdfsPerReducer, r, 4000 + r as u64);
        let bsfs = fig6_point(Fig6System::BsfsSharedAppend, r, 4000 + r as u64);
        hdfs_series.push(hdfs.secs);
        bsfs_series.push(bsfs.secs);
        bsfs_transfers.push(bsfs.shuffle_transfers);
        // With 10 maps spread over 247 tasktrackers every map lands on its
        // own node, so tier-2 combining leaves one segment per (map, r).
        assert_eq!(
            bsfs.shuffle_segments,
            10 * u64::from(r),
            "every reducer pulls every map-node's combined output"
        );
        assert!(
            bsfs.shuffle_transfers <= bsfs.shuffle_segments,
            "host grouping can never add transfers"
        );
        rows.push(vec![
            r.to_string(),
            format!("{:.0}", hdfs.secs),
            format!("{:.0}", bsfs.secs),
            format!("{:.3}", bsfs.secs / hdfs.secs),
            hdfs.output_files.to_string(),
            bsfs.output_files.to_string(),
            format!("{}/{}", bsfs.shuffle_transfers, bsfs.shuffle_segments),
        ]);
    }
    print_table(
        "Figure 6: data join completion time vs number of reducers (270 nodes, 640 MB in, ~6.3 GB out)",
        &[
            "reducers",
            "HDFS multi-file (s)",
            "BSFS single-file (s)",
            "BSFS/HDFS",
            "HDFS files",
            "BSFS files",
            "shuffle xfers/segs",
        ],
        &rows,
    );
    let worst_ratio = hdfs_series
        .iter()
        .zip(&bsfs_series)
        .map(|(h, b)| (b / h - 1.0).abs())
        .fold(0.0f64, f64::max);
    println!(
        "\nshape: max |BSFS-HDFS| completion-time gap: {:.1}% (paper: \"BSFS finishes the job in \
         approximately the same amount of time as HDFS\");",
        worst_ratio * 100.0
    );
    println!(
        "shape: completion-time spread over reducer counts: HDFS {:.2}, BSFS {:.2} (paper: \
         \"the completion time in both scenarios remains constant\", dominated by the map phase);",
        relative_spread(&hdfs_series),
        relative_spread(&bsfs_series)
    );
    println!(
        "file-count: HDFS leaves R files, BSFS always leaves 1 — the paper's simplicity argument."
    );
    assert!(
        worst_ratio < 0.25,
        "append support should come at no extra cost; gap {worst_ratio:.2}"
    );

    // Shuffle-stress point: 48 maps on 8 nodes, 8 reducers. fig6's own
    // 10-map workload spreads across 247 tasktrackers, so per-node combining
    // only shows once maps outnumber nodes — here the tier-2 combine folds
    // every node's 6 map outputs into one segment per partition, so each
    // reducer pulls at most 8 segments instead of 48.
    let (maps, segments, transfers, stress_secs) = fig6_shuffle_stress(8, 48, 8, 4242);
    let naive = u64::from(maps) * 8;
    let reduction = naive as f64 / segments.max(1) as f64;
    println!(
        "\nshuffle stress ({maps} maps / 8 nodes / 8 reducers): tier-2 combine published \
         {segments} segments where per-task shuffle would pull {naive} ({reduction:.1}x fewer), \
         {transfers} wire transfers, {stress_secs:.1}s"
    );
    assert!(
        segments <= 8 * 8,
        "tier-2 combine must bound segments by map-nodes x reducers: {segments}"
    );
    assert!(
        segments * 2 <= naive,
        "with maps >> nodes the combined shuffle must at least halve the segment pulls: \
         {segments} segments for {naive} naive per-task pulls"
    );
    assert!(
        transfers <= 80,
        "streaming fetch must not exceed the per-(node, partition) delivery budget: {transfers}"
    );

    // Record the run and diff the deterministic currencies against the
    // committed baseline (virtual completion seconds and wire counts are
    // exact for a fixed seed; wall clock never enters this file).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fig6_shuffle.json");
    let baseline = std::fs::read_to_string(path).ok();
    let json = to_json(
        &reducers,
        &hdfs_series,
        &bsfs_series,
        &bsfs_transfers,
        maps,
        segments,
        transfers,
        stress_secs,
    );
    // Diff BEFORE overwriting: a regressed run must die with the committed
    // baseline intact, not clobber it and pass on the next invocation. The
    // fresh numbers land in a `.new` side file first (what CI uploads when
    // the diff fails, so a deliberate re-record has the data) and are
    // promoted onto the canonical path only after the diff passes.
    let new_path = format!("{path}.new");
    std::fs::write(&new_path, &json).expect("write fresh bench record");
    match baseline {
        None => println!("no committed baseline found; this run records the first one"),
        Some(base) => diff_against_baseline(&base, &bsfs_series, segments, transfers),
    }
    std::fs::write(path, &json).expect("write BENCH_fig6_shuffle.json");
    let _ = std::fs::remove_file(&new_path);
    println!("wrote {path}");
}

/// Fail when this run regressed vs the committed baseline: BSFS completion
/// time (sim-deterministic) per reducer sweep point, and the stress point's
/// shuffle round-trips.
fn diff_against_baseline(base: &str, bsfs_series: &[f64], segments: u64, transfers: u64) {
    let Some(stress) = base.find("\"shuffle_stress\"").map(|i| &base[i..]) else {
        println!("baseline predates the shuffle_stress record; skipping diff");
        return;
    };
    let base_segments = json_num(stress, "segments").expect("baseline segments");
    let base_transfers = json_num(stress, "transfers").expect("baseline transfers");
    assert!(
        (segments as f64 - base_segments).abs() < 0.5,
        "stress workload changed: {segments} segments vs baseline {base_segments}"
    );
    assert!(
        transfers as f64 <= base_transfers * BASELINE_TOLERANCE,
        "shuffle round-trips regressed: {transfers} vs baseline {base_transfers}"
    );
    // BSFS completion seconds, pointwise.
    let base_secs = json_series(base, "bsfs_secs");
    assert_eq!(
        base_secs.len(),
        bsfs_series.len(),
        "baseline sweep shape changed; re-record BENCH_fig6_shuffle.json deliberately"
    );
    for (now, base) in bsfs_series.iter().zip(&base_secs) {
        assert!(
            *now <= base * BASELINE_TOLERANCE,
            "BSFS fig6 completion regressed: {now:.1}s vs baseline {base:.1}s"
        );
    }
    println!(
        "baseline diff passed: transfers {transfers} <= {base_transfers} x {BASELINE_TOLERANCE}, \
         completion within {BASELINE_TOLERANCE}x pointwise"
    );
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    reducers: &[u32],
    hdfs: &[f64],
    bsfs: &[f64],
    bsfs_transfers: &[u64],
    maps: u32,
    segments: u64,
    transfers: u64,
    stress_secs: f64,
) -> String {
    let fmt_f = |v: &[f64]| {
        v.iter()
            .map(|x| format!("{x:.1}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let fmt_u = |v: &[u64]| v.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
    let fmt_r = |v: &[u32]| v.iter().map(u32::to_string).collect::<Vec<_>>().join(", ");
    let naive = u64::from(maps) * 8;
    format!(
        "{{\n  \"bench\": \"fig6_datajoin\",\n  \"reducers\": [{}],\n  \"hdfs_secs\": [{}],\n  \
         \"bsfs_secs\": [{}],\n  \"bsfs_shuffle_transfers\": [{}],\n  \"shuffle_stress\": \
         {{\"nodes\": 8, \"maps\": {maps}, \"reducers\": 8, \"naive_pulls\": {naive}, \
         \"segments\": {segments}, \"transfers\": {transfers}, \"segment_reduction\": {:.2}, \
         \"secs\": {stress_secs:.1}}}\n}}\n",
        fmt_r(reducers),
        fmt_f(hdfs),
        fmt_f(bsfs),
        fmt_u(bsfs_transfers),
        naive as f64 / segments.max(1) as f64,
    )
}
