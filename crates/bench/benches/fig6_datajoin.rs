//! Figure 6 — "Completion time of the data join application when varying
//! the number of reducers": the data join contrib application (2 × 320 MB
//! Last.fm-like input, ≈6.3 GB join output) on the 270-node cluster,
//! comparing original Hadoop + HDFS (one output file per reducer) against
//! modified Hadoop + BSFS (all reducers append to one shared file).
//!
//! Paper claims: (a) BSFS finishes in approximately the same time as HDFS —
//! the single shared output file costs nothing; (b) both curves stay
//! roughly constant because data join is computation-dominated; (c) BSFS
//! leaves ONE file where HDFS leaves R.

use bench_suite::{fig6_point, print_table, relative_spread, Fig6System};

fn main() {
    let reducers = [1u32, 10, 25, 50, 100, 150, 200, 230];
    let mut rows = Vec::new();
    let mut hdfs_series = Vec::new();
    let mut bsfs_series = Vec::new();
    for &r in &reducers {
        let (hdfs_secs, hdfs_files) = fig6_point(Fig6System::HdfsPerReducer, r, 4000 + r as u64);
        let (bsfs_secs, bsfs_files) = fig6_point(Fig6System::BsfsSharedAppend, r, 4000 + r as u64);
        hdfs_series.push(hdfs_secs);
        bsfs_series.push(bsfs_secs);
        rows.push(vec![
            r.to_string(),
            format!("{hdfs_secs:.0}"),
            format!("{bsfs_secs:.0}"),
            format!("{:.3}", bsfs_secs / hdfs_secs),
            hdfs_files.to_string(),
            bsfs_files.to_string(),
        ]);
    }
    print_table(
        "Figure 6: data join completion time vs number of reducers (270 nodes, 640 MB in, ~6.3 GB out)",
        &[
            "reducers",
            "HDFS multi-file (s)",
            "BSFS single-file (s)",
            "BSFS/HDFS",
            "HDFS files",
            "BSFS files",
        ],
        &rows,
    );
    let worst_ratio = hdfs_series
        .iter()
        .zip(&bsfs_series)
        .map(|(h, b)| (b / h - 1.0).abs())
        .fold(0.0f64, f64::max);
    println!(
        "\nshape: max |BSFS-HDFS| completion-time gap: {:.1}% (paper: \"BSFS finishes the job in \
         approximately the same amount of time as HDFS\");",
        worst_ratio * 100.0
    );
    println!(
        "shape: completion-time spread over reducer counts: HDFS {:.2}, BSFS {:.2} (paper: \
         \"the completion time in both scenarios remains constant\", dominated by the map phase);",
        relative_spread(&hdfs_series),
        relative_spread(&bsfs_series)
    );
    println!(
        "file-count: HDFS leaves R files, BSFS always leaves 1 — the paper's simplicity argument."
    );
    assert!(
        worst_ratio < 0.25,
        "append support should come at no extra cost; gap {worst_ratio:.2}"
    );
}
