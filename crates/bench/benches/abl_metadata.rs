//! Ablation A3 — number of metadata providers. The paper deploys 20 (§4.1)
//! without justifying the number; this sweep shows the metadata DHT's share
//! of the append path and where it saturates. 128 concurrent appenders of
//! one 64 MB chunk each (small pages would stress metadata much more; the
//! 64 MB pages of the paper make metadata cheap — which is the point).

use bench_suite::{fig3_point_on, paper_bsfs_with_layout, print_table};
use blobseer::{BlobSeerConfig, Layout};
use fabric::ClusterSpec;

fn main() {
    let mut rows = Vec::new();
    for &n_meta in &[1u32, 5, 20, 64] {
        let spec = ClusterSpec::orsay_270();
        let layout = Layout::paper_with_meta(&spec, n_meta);
        let (fx, fs) =
            paper_bsfs_with_layout(9200 + n_meta as u64, BlobSeerConfig::paper(), layout);
        let t = fig3_point_on(&fx, &fs, 128);
        let dht = fs.store().metadata_dht();
        let max_server_nodes = dht
            .servers()
            .iter()
            .map(|s| s.node_count())
            .max()
            .unwrap_or(0);
        rows.push(vec![
            n_meta.to_string(),
            format!("{t:.1}"),
            dht.total_nodes().to_string(),
            max_server_nodes.to_string(),
        ]);
    }
    print_table(
        "Ablation A3: metadata providers vs append throughput (128 appenders x 64 MB; paper deploys 20)",
        &["meta providers", "per-client MB/s", "total tree nodes", "max nodes on one server"],
        &rows,
    );
    println!(
        "\nnote: with 64 MB pages each append writes O(log P) tree nodes, so even one metadata \
         provider is far from saturation at this scale — consistent with the paper's \"this \
         overhead is low\" (§3.1.2)."
    );
}
