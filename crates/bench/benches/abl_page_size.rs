//! Ablation A1 — page size. The paper fixes the BlobSeer page size to
//! 64 MB "to enable a fair comparison" with HDFS chunks (§4.1). This sweep
//! shows what that choice trades: smaller pages stripe one append across
//! more providers (parallel page writes) but multiply metadata operations.
//! 64 concurrent appenders each append one 64 MB chunk.

use bench_suite::{fig3_point_on, paper_bsfs_with, print_table};
use blobseer::BlobSeerConfig;

fn main() {
    let mb = 1024 * 1024u64;
    let sizes = [4 * mb, 16 * mb, 32 * mb, 64 * mb, 128 * mb];
    let mut rows = Vec::new();
    for &ps in &sizes {
        let config = BlobSeerConfig::paper().with_page_size(ps);
        let (fx, fs) = paper_bsfs_with(9000 + ps / mb, config);
        // Appenders append one 64MB-equivalent chunk regardless of page
        // size: fig3_point_on appends `default_block_size` per client, so
        // compute throughput for a fixed total by scaling workload: here we
        // simply report per-client throughput for one block of `ps` bytes
        // and the metadata ops it took.
        let t = fig3_point_on(&fx, &fs, 64);
        let dht = fs.store().metadata_dht();
        let (puts, _) = dht
            .servers()
            .iter()
            .map(|s| s.op_counts())
            .fold((0, 0), |acc, c| (acc.0 + c.0, acc.1 + c.1));
        rows.push(vec![
            format!("{} MB", ps / mb),
            format!("{t:.1}"),
            puts.to_string(),
        ]);
    }
    print_table(
        "Ablation A1: BlobSeer page size vs per-client append throughput (64 appenders, one page-sized chunk each)",
        &["page size", "per-client MB/s", "metadata puts"],
        &rows,
    );
    println!(
        "\nnote: the paper pins page size = 64 MB to match HDFS chunks; small pages pay a \
         metadata tax per byte, large pages reduce placement freedom."
    );
}
