//! Reader scaling past the paper's axis — the read-replica tier and the
//! snapshot-scoped client cache under a reader storm. The paper's Figure 4
//! fixes 100 readers and scales appenders; here the readers themselves
//! scale (250 and 1000 of them) across a replica axis the paper never had:
//! published pages are synced to 0/4/8 dedicated read replicas, and the
//! replica-preferring read path must turn each added replica NIC into
//! aggregate read bandwidth while the primaries go quiet.
//!
//! Two passes per point. The **cold** pass reads the whole pre-filled blob
//! through per-reader caching clients: with any replicas deployed, the
//! primaries must serve *zero* get round-trips — every byte comes off the
//! replica tier. The **warm** pass re-reads through the same clients: the
//! snapshot-scoped cache answers everything, so no provider (primary or
//! replica) sees a single get. The driver records its deterministic
//! currencies — aggregate cold MB/s, primary/replica get round-trips per
//! pass, warm hit rate, virtual seconds, wire transfers — into
//! `BENCH_fig4_readers.json` at the repo root and diffs each run against
//! the committed baseline, exactly like fig3/fig5/fig6.
//!
//! Topology intuition (tiny/grid5000 NICs are 117 MB/s, non-blocking
//! switch): 2 primaries cap the no-replica ceiling at ~234 MB/s; 4 and 8
//! replicas raise the serving tier to ~468 and ~936 MB/s. The monotone /
//! >= 2x assertions below are that capacity argument, measured.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use bench_suite::{json_series, mbps, print_table};
use blobseer::{BlobSeer, BlobSeerConfig, Layout};
use fabric::prelude::*;
use fabric::ClusterSpec;
use parking_lot::Mutex;

const BASELINE_TOLERANCE: f64 = 1.25;

/// Page size and page count of the shared blob every reader scans:
/// 64 x 4 MB = 256 MB. Many small-ish pages spread the page->replica hash
/// evenly, so the replica tier's aggregate NIC capacity is actually
/// reachable.
const PAGE: u64 = 4 * 1024 * 1024;
const PAGES: u64 = 64;
const BLOB_BYTES: u64 = PAGE * PAGES;

/// Reader procs spread over these nodes (disjoint from every service node,
/// so no read ever short-circuits to a local primary).
const READER_NODES: u32 = 16;
const FIRST_READER_NODE: u32 = 16;

#[derive(Debug, Clone, Copy)]
struct Fig4Point {
    readers: u32,
    replicas: usize,
    /// Aggregate cold-pass read throughput, MB/s (virtual time).
    cold_mbps: f64,
    /// Primary-provider get round-trips during the cold pass.
    cold_primary_gets: u64,
    /// Read-replica get round-trips during the cold pass.
    cold_replica_gets: u64,
    /// Provider get round-trips (primaries + replicas) during the warm
    /// pass — the cache makes this zero.
    warm_gets: u64,
    /// Warm-pass page hit rate across every reader's cache.
    hit_rate: f64,
    /// Virtual completion time of the whole run, seconds.
    sim_secs: f64,
    /// Wire transfers issued across the run (every message counts).
    transfers: u64,
}

fn main() {
    let grid: [(u32, usize); 6] = [
        (250, 0),
        (250, 4),
        (250, 8),
        (1000, 0),
        (1000, 4),
        (1000, 8),
    ];
    let mut points = Vec::new();
    let mut rows = Vec::new();
    for &(readers, replicas) in &grid {
        let d = fig4_point(readers, replicas, 4000 + readers as u64 + replicas as u64);
        rows.push(vec![
            readers.to_string(),
            replicas.to_string(),
            format!("{:.1}", d.cold_mbps),
            format!("{}/{}", d.cold_primary_gets, d.cold_replica_gets),
            d.warm_gets.to_string(),
            format!("{:.3}", d.hit_rate),
            format!("{:.1}", d.sim_secs),
            d.transfers.to_string(),
        ]);
        points.push(d);
    }
    print_table(
        "Reader scaling: aggregate read throughput vs dedicated read replicas",
        &[
            "readers",
            "replicas",
            "cold agg MB/s",
            "cold primary/replica gets",
            "warm gets",
            "warm hit rate",
            "sim secs",
            "transfers",
        ],
        &rows,
    );

    for d in &points {
        if d.replicas > 0 {
            assert_eq!(
                d.cold_primary_gets, 0,
                "readers={}, replicas={}: primaries served {} cold get round-trips — \
                 published reads must come off the replica tier",
                d.readers, d.replicas, d.cold_primary_gets
            );
        }
        assert_eq!(
            d.warm_gets, 0,
            "readers={}, replicas={}: warm pass reached providers {} times — \
             cache-hot published reads must touch no service",
            d.readers, d.replicas, d.warm_gets
        );
        assert!(
            d.hit_rate >= 0.99,
            "readers={}, replicas={}: warm hit rate {:.3} < 0.99",
            d.readers,
            d.replicas,
            d.hit_rate
        );
    }
    for readers in [250u32, 1000] {
        let series: Vec<f64> = points
            .iter()
            .filter(|d| d.readers == readers)
            .map(|d| d.cold_mbps)
            .collect();
        for w in series.windows(2) {
            assert!(
                w[1] >= w[0],
                "{readers} readers: throughput fell when replicas were added: {series:?}"
            );
        }
        let scaling = series.last().unwrap() / series.first().unwrap();
        println!("\nshape: {readers} readers, aggregate throughput 0 -> 8 replicas: {scaling:.2}x");
        if readers == 1000 {
            assert!(
                scaling >= 2.0,
                "1000 readers: 8 replicas bought only {scaling:.2}x over none (need >= 2x)"
            );
        }
    }

    // Record the run and diff the deterministic currencies against the
    // committed baseline. Diff BEFORE overwriting: a regressed run must die
    // with the committed baseline intact; the fresh numbers land in a
    // `.new` side file (what CI uploads on failure, so a deliberate
    // re-record has the data) and are promoted only after the diff passes.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fig4_readers.json");
    let json = to_json(&points);
    let new_path = format!("{path}.new");
    std::fs::write(&new_path, &json).expect("write fresh bench record");
    match std::fs::read_to_string(path).ok() {
        None => println!("no committed baseline found; this run records the first one"),
        Some(base) => diff_against_baseline(&base, &points),
    }
    std::fs::write(path, &json).expect("write BENCH_fig4_readers.json");
    let _ = std::fs::remove_file(&new_path);
    println!("wrote {path}");
}

/// One grid point: deploy fresh, prefill and replica-sync the shared blob,
/// then run the cold and warm passes back to back inside one fabric run.
fn fig4_point(readers: u32, replicas: usize, seed: u64) -> Fig4Point {
    let fx = Fabric::sim_seeded(ClusterSpec::tiny(FIRST_READER_NODE + READER_NODES), seed);
    // 2 primaries on nodes 5-6, replicas from node 7; readers from node 16.
    let layout = Layout {
        vm: NodeId(0),
        pm: NodeId(1),
        namespace: NodeId(2),
        meta: vec![NodeId(3), NodeId(4)],
        providers: vec![NodeId(5), NodeId(6)],
        read_replicas: (7..7 + replicas as u32).map(NodeId).collect(),
    };
    let bs = BlobSeer::deploy(&fx, BlobSeerConfig::test_small(PAGE), layout).expect("deploy");

    let cold_gate = fx.gate();
    let warm_gate = fx.gate();
    // (primary gets, replica gets) snapshotted after prefill and after the
    // cold pass, so each pass's round-trips are an exact delta.
    let snaps: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let blob_cell = Arc::new(Mutex::new(None));
    {
        let bs2 = bs.clone();
        let g = cold_gate.clone();
        let snaps2 = snaps.clone();
        let blob2 = blob_cell.clone();
        fx.spawn(NodeId(15), "setup", move |p| {
            let w = bs2.client();
            let blob = w.create(p, None);
            w.append(p, blob, Payload::ghost(BLOB_BYTES)).unwrap();
            let mut synced = 0;
            loop {
                let (pages, _) = bs2.sync_read_replicas(p);
                if pages == 0 {
                    break;
                }
                synced += pages;
            }
            assert_eq!(
                synced,
                PAGES * bs2.read_replicas().len() as u64,
                "replica sync must copy every page to every replica"
            );
            *blob2.lock() = Some(blob);
            snaps2.lock().push(get_counts(&bs2));
            g.set();
        });
    }
    let cold_spans: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let hits: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let cold_done = Arc::new(AtomicUsize::new(0));
    for i in 0..readers {
        let bs2 = bs.clone();
        let (g1, g2) = (cold_gate.clone(), warm_gate.clone());
        let (snaps2, spans2, hits2) = (snaps.clone(), cold_spans.clone(), hits.clone());
        let done = cold_done.clone();
        let blob2 = blob_cell.clone();
        let node = NodeId(FIRST_READER_NODE + i % READER_NODES);
        fx.spawn(node, format!("reader{i}"), move |p| {
            g1.wait(p);
            let blob = blob_cell_get(&blob2);
            let client = bs2.client();
            let t0 = p.now();
            let got = client.read(p, blob, None, 0, BLOB_BYTES).unwrap();
            assert_eq!(got.len(), BLOB_BYTES);
            spans2.lock().push((t0, p.now()));
            // The last reader out of the cold pass snapshots the round-trip
            // counters and opens the warm pass for everyone.
            if done.fetch_add(1, Ordering::SeqCst) + 1 == readers as usize {
                snaps2.lock().push(get_counts(&bs2));
                g2.set();
            }
            g2.wait(p);
            let got = client.read(p, blob, None, 0, BLOB_BYTES).unwrap();
            assert_eq!(got.len(), BLOB_BYTES);
            let s = client.cache_stats();
            hits2.lock().push((s.page_hits, s.page_misses));
        });
    }
    fx.run();

    let spans = cold_spans.lock();
    let start = spans.iter().map(|&(a, _)| a).min().unwrap();
    let end = spans.iter().map(|&(_, b)| b).max().unwrap();
    let snaps = snaps.lock();
    let (prefill, after_cold) = (snaps[0], snaps[1]);
    let final_counts = get_counts(&bs);
    // Page hits are warm-pass only (the cold pass runs against an empty
    // cache), so the hit rate is hits / one warm blob-scan per reader.
    let (page_hits, _): (u64, u64) = {
        let h = hits.lock();
        assert_eq!(h.len(), readers as usize);
        h.iter().fold((0, 0), |(a, b), &(h_, m_)| (a + h_, b + m_))
    };
    Fig4Point {
        readers,
        replicas,
        cold_mbps: mbps(readers as u64 * BLOB_BYTES, end - start),
        cold_primary_gets: after_cold.0 - prefill.0,
        cold_replica_gets: after_cold.1 - prefill.1,
        warm_gets: (final_counts.0 - after_cold.0) + (final_counts.1 - after_cold.1),
        hit_rate: page_hits as f64 / (readers as u64 * PAGES) as f64,
        sim_secs: fx.now() as f64 / 1e9,
        transfers: fx.stats().transfers,
    }
}

/// Get wire round-trips as (primaries total, replicas total).
fn get_counts(bs: &BlobSeer) -> (u64, u64) {
    let sum =
        |provs: &[Arc<blobseer::provider::Provider>]| provs.iter().map(|p| p.rpc_counts().1).sum();
    (sum(bs.providers()), sum(bs.read_replicas()))
}

fn blob_cell_get(cell: &Mutex<Option<blobseer::BlobId>>) -> blobseer::BlobId {
    cell.lock().expect("setup published the blob id")
}

/// Fail when this run regressed vs the committed baseline, pointwise on the
/// deterministic currencies: cold throughput must not fall, and completion
/// time / wire transfers / get round-trips must not grow, beyond tolerance.
/// A legitimate cost change re-records the JSON deliberately.
fn diff_against_baseline(base: &str, points: &[Fig4Point]) {
    let base_readers = json_series(base, "readers");
    assert_eq!(
        base_readers.len(),
        points.len(),
        "baseline grid shape changed; re-record BENCH_fig4_readers.json deliberately"
    );
    let base_cold = json_series(base, "cold_mbps");
    let base_primary = json_series(base, "cold_primary_gets");
    let base_replica = json_series(base, "cold_replica_gets");
    let base_secs = json_series(base, "sim_secs");
    let base_transfers = json_series(base, "transfers");
    for (i, d) in points.iter().enumerate() {
        let at = format!("readers={}, replicas={}", d.readers, d.replicas);
        assert!(
            d.cold_mbps >= base_cold[i] / BASELINE_TOLERANCE,
            "{at}: cold throughput regressed {:.1} -> {:.1} MB/s vs baseline",
            base_cold[i],
            d.cold_mbps,
        );
        assert!(
            (d.cold_primary_gets as f64) <= base_primary[i] * BASELINE_TOLERANCE,
            "{at}: primary get round-trips regressed {} -> {} vs baseline",
            base_primary[i],
            d.cold_primary_gets,
        );
        assert!(
            (d.cold_replica_gets as f64) <= base_replica[i] * BASELINE_TOLERANCE,
            "{at}: replica get round-trips regressed {} -> {} vs baseline",
            base_replica[i],
            d.cold_replica_gets,
        );
        assert!(
            d.sim_secs <= base_secs[i] * BASELINE_TOLERANCE,
            "{at}: completion regressed {:.1}s -> {:.1}s vs baseline",
            base_secs[i],
            d.sim_secs,
        );
        assert!(
            (d.transfers as f64) <= base_transfers[i] * BASELINE_TOLERANCE,
            "{at}: wire transfers regressed {} -> {} vs baseline",
            base_transfers[i],
            d.transfers,
        );
    }
    println!(
        "baseline diff passed: throughput, completion, transfers and get \
         round-trips within {BASELINE_TOLERANCE}x pointwise"
    );
}

fn to_json(points: &[Fig4Point]) -> String {
    let fmt_f = |f: &dyn Fn(&Fig4Point) -> f64, prec: usize| {
        points
            .iter()
            .map(|d| format!("{:.*}", prec, f(d)))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let fmt_u = |f: &dyn Fn(&Fig4Point) -> u64| {
        points
            .iter()
            .map(|d| f(d).to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        "{{\n  \"bench\": \"fig4_readers\",\n  \"readers\": [{}],\n  \"replicas\": [{}],\n  \
         \"cold_mbps\": [{}],\n  \"cold_primary_gets\": [{}],\n  \"cold_replica_gets\": [{}],\n  \
         \"warm_gets\": [{}],\n  \"hit_rate\": [{}],\n  \"sim_secs\": [{}],\n  \
         \"transfers\": [{}]\n}}\n",
        fmt_u(&|d| d.readers as u64),
        fmt_u(&|d| d.replicas as u64),
        fmt_f(&|d| d.cold_mbps, 2),
        fmt_u(&|d| d.cold_primary_gets),
        fmt_u(&|d| d.cold_replica_gets),
        fmt_u(&|d| d.warm_gets),
        fmt_f(&|d| d.hit_rate, 4),
        fmt_f(&|d| d.sim_secs, 2),
        fmt_u(&|d| d.transfers),
    )
}
