//! fig6_combiners — combiner-ablation companion to Figure 6: how many
//! shuffle *bytes* (not just round-trips) the two-tier combine removes, at
//! the shuffle-stress shape (48 maps / 8 nodes / 8 reducers, maps ≫ nodes).
//!
//! The tuning axis sweeps the tier-2 flush cadence: `off` (no node
//! combine), `eager1` (flush after every buffered task — maximum overlap,
//! minimum cross-task combining), `tasks2` (flush every 2 tasks) and `node`
//! (flush only at node map-phase completion — maximum combining). Both
//! workloads run each point: wordcount's combiner collapses repeated keys
//! (calibrated ghost ratio 0.15, so full-node combining cuts bytes ≳5x),
//! while datajoin has no combiner — tier-2 only merges segments per node,
//! so its bytes must NOT move (the ablation's control arm).
//!
//! Results land in `BENCH_fig6_combiners.json` at the repo root; the
//! committed copy is the baseline this driver diffs against (shuffle bytes
//! are sim-exact for a fixed seed; completion seconds get the usual 1.25x
//! tolerance), so a combine regression fails the build.

use bench_suite::{fig6_combiners_point, json_series, print_table, CombinePoint, CombineWorkload};
use mapreduce::ShuffleTuning;

const BASELINE_TOLERANCE: f64 = 1.25;
const NODES: u32 = 8;
const MAPS: u32 = 48;
const REDUCERS: u32 = 8;
const SEED: u64 = 6464;

/// The swept flush cadences, mildest to most aggressive combining.
fn tunings() -> Vec<(&'static str, ShuffleTuning)> {
    vec![
        (
            "off",
            ShuffleTuning {
                node_combine: false,
                flush_tasks: None,
                flush_bytes: None,
            },
        ),
        (
            "eager1",
            ShuffleTuning {
                node_combine: true,
                flush_tasks: Some(1),
                flush_bytes: None,
            },
        ),
        (
            "tasks2",
            ShuffleTuning {
                node_combine: true,
                flush_tasks: Some(2),
                flush_bytes: None,
            },
        ),
        // Default tuning: 64 MiB byte threshold never fires at this input
        // size, so nodes flush exactly once, at map-phase completion.
        ("node", ShuffleTuning::default()),
    ]
}

fn main() {
    let mut rows = Vec::new();
    let mut wc_bytes = Vec::new();
    let mut wc_secs = Vec::new();
    let mut dj_bytes = Vec::new();
    let mut dj_secs = Vec::new();
    let mut wc_points: Vec<CombinePoint> = Vec::new();
    let mut dj_points: Vec<CombinePoint> = Vec::new();
    for (label, tuning) in tunings() {
        let wc = fig6_combiners_point(
            CombineWorkload::Wordcount,
            NODES,
            MAPS,
            REDUCERS,
            tuning,
            SEED,
        );
        let dj = fig6_combiners_point(
            CombineWorkload::Datajoin,
            NODES,
            MAPS,
            REDUCERS,
            tuning,
            SEED,
        );
        rows.push(vec![
            label.to_string(),
            mb(wc.shuffle_bytes),
            mb(wc.combine_saved_bytes),
            wc.combined_segments.to_string(),
            wc.early_shuffle_fetches.to_string(),
            format!("{:.1}", wc.secs),
            mb(dj.shuffle_bytes),
            dj.combined_segments.to_string(),
            format!("{:.1}", dj.secs),
        ]);
        wc_bytes.push(wc.shuffle_bytes);
        wc_secs.push(wc.secs);
        dj_bytes.push(dj.shuffle_bytes);
        dj_secs.push(dj.secs);
        wc_points.push(wc);
        dj_points.push(dj);
    }
    print_table(
        "fig6_combiners: shuffle bytes vs combine flush cadence (48 maps / 8 nodes / 8 reducers)",
        &[
            "tuning",
            "wc bytes (MB)",
            "wc saved (MB)",
            "wc segs",
            "wc early",
            "wc secs",
            "dj bytes (MB)",
            "dj segs",
            "dj secs",
        ],
        &rows,
    );

    let (wc_off, wc_node) = (&wc_points[0], &wc_points[3]);
    let byte_cut = wc_off.shuffle_bytes as f64 / wc_node.shuffle_bytes.max(1) as f64;
    println!(
        "\nwordcount: full-node combining shuffles {:.1}x fewer bytes than combiner-off \
         ({} -> {} bytes, {} saved);",
        byte_cut, wc_off.shuffle_bytes, wc_node.shuffle_bytes, wc_node.combine_saved_bytes
    );
    println!(
        "datajoin control: no combiner, so bytes stay put ({} across every tuning) while \
         segments collapse {} -> {};",
        dj_points[0].shuffle_bytes, dj_points[0].shuffle_segments, dj_points[3].combined_segments
    );

    // The headline claim: combining cuts wordcount shuffle BYTES >= 5x at
    // the stress shape (ghost ratio 0.15 over whole-node runs gives ~6.7x).
    assert!(
        byte_cut >= 5.0,
        "node combining must cut wordcount shuffle bytes >= 5x, got {byte_cut:.2}x \
         ({} vs {})",
        wc_off.shuffle_bytes,
        wc_node.shuffle_bytes
    );
    assert!(
        wc_node.combine_saved_bytes > 0 && wc_node.combined_segments > 0,
        "combined run must account its savings"
    );
    assert_eq!(
        wc_off.combined_segments, 0,
        "combiner-off run published combined segments"
    );
    assert!(
        wc_node.combined_segments <= u64::from(NODES) * u64::from(REDUCERS),
        "tier-2 publishes at most one segment per (node, partition): {}",
        wc_node.combined_segments
    );
    // Every combined cadence earns the cut, eager included (per-flush ghost
    // rounding makes the exact byte counts differ by a few bytes between
    // cadences, so no strict monotonicity across them — just the bound).
    for (i, b) in wc_bytes.iter().enumerate().skip(1) {
        assert!(
            *b * 5 <= wc_off.shuffle_bytes,
            "combined tuning #{i} must cut wordcount shuffle bytes >= 5x: {b} vs {}",
            wc_off.shuffle_bytes
        );
    }
    // Control arm: datajoin has no combiner, so tier-2 must move segments,
    // not bytes — byte-identical shuffle volume across the whole sweep.
    for b in &dj_bytes {
        assert_eq!(
            *b, dj_bytes[0],
            "datajoin shuffle bytes moved under a combiner-less tuning sweep"
        );
    }
    assert!(
        dj_points[3].combined_segments <= u64::from(NODES) * u64::from(REDUCERS),
        "datajoin node-flush segments exceed nodes x reducers"
    );
    // Streaming: the eager cadence demonstrably overlaps shuffle with the
    // map phase.
    assert!(
        wc_points[1].early_shuffle_fetches > 0,
        "eager flushing produced no early reducer fetches"
    );

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_fig6_combiners.json"
    );
    let baseline = std::fs::read_to_string(path).ok();
    let json = to_json(&wc_bytes, &wc_secs, &dj_bytes, &dj_secs, byte_cut);
    // Diff BEFORE overwriting (see fig6_datajoin): fresh numbers go to a
    // `.new` side file, promoted only after the diff passes.
    let new_path = format!("{path}.new");
    std::fs::write(&new_path, &json).expect("write fresh bench record");
    match baseline {
        None => println!("no committed baseline found; this run records the first one"),
        Some(base) => diff_against_baseline(&base, &wc_bytes, &wc_secs, &dj_bytes, &dj_secs),
    }
    std::fs::write(path, &json).expect("write BENCH_fig6_combiners.json");
    let _ = std::fs::remove_file(&new_path);
    println!("wrote {path}");
}

fn mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Shuffle bytes are exact sim currencies: any drift is a combine-pipeline
/// change and must be re-recorded deliberately. Seconds get tolerance.
fn diff_against_baseline(
    base: &str,
    wc_bytes: &[u64],
    wc_secs: &[f64],
    dj_bytes: &[u64],
    dj_secs: &[f64],
) {
    let check_bytes = |key: &str, now: &[u64]| {
        let base_series = json_series(base, key);
        assert_eq!(
            base_series.len(),
            now.len(),
            "baseline {key} shape changed; re-record BENCH_fig6_combiners.json deliberately"
        );
        for (n, b) in now.iter().zip(&base_series) {
            assert!(
                (*n as f64 - b).abs() < 0.5,
                "{key} drifted: {n} vs baseline {b} — combine pipeline changed"
            );
        }
    };
    check_bytes("wordcount_shuffle_bytes", wc_bytes);
    check_bytes("datajoin_shuffle_bytes", dj_bytes);
    let check_secs = |key: &str, now: &[f64]| {
        let base_series = json_series(base, key);
        assert_eq!(base_series.len(), now.len(), "baseline {key} shape changed");
        for (n, b) in now.iter().zip(&base_series) {
            assert!(
                *n <= b * BASELINE_TOLERANCE,
                "{key} regressed: {n:.1}s vs baseline {b:.1}s"
            );
        }
    };
    check_secs("wordcount_secs", wc_secs);
    check_secs("datajoin_secs", dj_secs);
    println!("baseline diff passed: bytes exact, completion within {BASELINE_TOLERANCE}x");
}

fn to_json(
    wc_bytes: &[u64],
    wc_secs: &[f64],
    dj_bytes: &[u64],
    dj_secs: &[f64],
    byte_cut: f64,
) -> String {
    let fmt_u = |v: &[u64]| v.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
    let fmt_f = |v: &[f64]| {
        v.iter()
            .map(|x| format!("{x:.1}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        "{{\n  \"bench\": \"fig6_combiners\",\n  \"nodes\": {NODES},\n  \"maps\": {MAPS},\n  \
         \"reducers\": {REDUCERS},\n  \"tunings\": [\"off\", \"eager1\", \"tasks2\", \"node\"],\n  \
         \"wordcount_shuffle_bytes\": [{}],\n  \"wordcount_secs\": [{}],\n  \
         \"datajoin_shuffle_bytes\": [{}],\n  \"datajoin_secs\": [{}],\n  \
         \"wordcount_byte_reduction\": {byte_cut:.2}\n}}\n",
        fmt_u(wc_bytes),
        fmt_f(wc_secs),
        fmt_u(dj_bytes),
        fmt_f(dj_secs),
    )
}
