//! Figure 4 — "Impact of concurrent appends on concurrent reads from the
//! same file": 100 readers (10 × 64 MB each, disjoint regions) measure
//! their average read throughput while 0→140 appenders (16 × 64 MB each)
//! hammer the same file. The paper: read throughput is sustained — the
//! versioning-based concurrency control isolates readers from appenders.

use bench_suite::{mixed_point, print_table, relative_spread};

fn main() {
    let appenders = [0u32, 20, 40, 60, 80, 100, 120, 140];
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for &a in &appenders {
        let (read_mbps, append_mbps) = mixed_point(100, 10, a, 16, 2000 + a as u64);
        series.push(read_mbps);
        rows.push(vec![
            a.to_string(),
            format!("{read_mbps:.1}"),
            if a == 0 {
                "-".into()
            } else {
                format!("{append_mbps:.1}")
            },
        ]);
    }
    print_table(
        "Figure 4: read throughput of 100 readers vs number of concurrent appenders",
        &["appenders", "read MB/s (avg of 100 readers)", "append MB/s"],
        &rows,
    );
    let retention = series.last().unwrap() / series.first().unwrap();
    println!(
        "\nshape: read throughput with 140 appenders vs none: {:.2} (paper: \"the average \
         throughput of BSFS reads is sustained even when the same file is accessed by multiple \
         concurrent appenders\"); spread {:.2}",
        retention,
        relative_spread(&series)
    );
    assert!(
        retention > 0.5,
        "readers were not isolated from appenders: retention {retention:.2}"
    );
}
