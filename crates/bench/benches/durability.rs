//! Durability bench — what the durable storage plane costs and buys.
//!
//! The paper's BlobSeer providers persist pages through BerkeleyDB
//! (§3.1.1); its published numbers run with the cache hot, so persistence
//! is a retention cost off the critical path. This bench pins our
//! equivalent in two series:
//!
//! * **retention**: per-append cost of a memory-only vs a pstore-backed
//!   deployment, in wall-clock ns (the real buffered-log write) and
//!   simulated ns (the modeled disk charge on the provider);
//! * **recovery**: crash-wiping and recovering every provider and metadata
//!   server, sweeping the checkpoint cadence — replayed log bytes must
//!   shrink as checkpoints tighten (that is the entire point of
//!   checkpointing), while recovery wall time is recorded for the record.
//!
//! Results land in `BENCH_durability.json`; the DETERMINISTIC currencies
//! (simulated ns, replayed bytes) are self-diffed against the committed
//! baseline at 1.25x. Wall-clock is recorded, never gated.

use std::path::PathBuf;
use std::time::Instant;

use bench_suite::{json_num, print_table};
use blobseer::{BlobSeer, BlobSeerConfig, Layout};
use fabric::{ClusterSpec, Fabric, NodeId, Payload};

const PS: u64 = 1024;
const APPENDS: usize = 256;
/// Checkpoint cadences swept by the recovery series; 0 encodes "never
/// checkpoint" (recovery replays the whole log).
const CADENCES: [u64; 4] = [0, 64 * 1024, 16 * 1024, 4 * 1024];

struct RetentionPoint {
    persist: bool,
    wall_ns_per_op: f64,
    sim_ns_per_op: f64,
}

struct RecoveryPoint {
    checkpoint_bytes: u64,
    provider_replayed_bytes: u64,
    meta_replayed_bytes: u64,
    recovery_wall_ns: u64,
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blobseer-bench-dur-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn deploy(persist_dir: Option<PathBuf>, checkpoint: Option<u64>) -> (Fabric, BlobSeer) {
    let fx = Fabric::sim(ClusterSpec::tiny(4));
    let layout = Layout::compact(fx.spec());
    let cfg = BlobSeerConfig::test_small(PS)
        .with_persist_dir(persist_dir)
        .with_persist_checkpoint_bytes(checkpoint);
    let bs = BlobSeer::deploy(&fx, cfg, layout).expect("deploy");
    (fx, bs)
}

/// Drive the fixed append workload (real bytes — a durable provider has to
/// retain them) and return (wall ns, sim ns) across all appends.
#[allow(clippy::disallowed_methods)] // reports wall vs sim time on purpose
fn run_appends(fx: &Fabric, bs: &BlobSeer) -> (u64, u64) {
    let bs2 = bs.clone();
    let h = fx.spawn(NodeId(1), "appender", move |p| {
        let c = bs2.client();
        let blob = c.create(p, None);
        let data: Vec<u8> = (0..PS).map(|i| (i % 251) as u8 + 1).collect();
        let sim0 = p.now();
        let wall0 = Instant::now();
        for _ in 0..APPENDS {
            c.append(p, blob, Payload::from_vec(data.clone())).unwrap();
        }
        (wall0.elapsed().as_nanos() as u64, p.now() - sim0)
    });
    fx.run();
    h.take().unwrap()
}

fn retention_point(persist: bool) -> RetentionPoint {
    let dir = persist.then(|| scratch_dir("retention"));
    let (fx, bs) = deploy(dir.clone(), None);
    let (wall, sim) = run_appends(&fx, &bs);
    drop(bs);
    if let Some(dir) = dir {
        let _ = std::fs::remove_dir_all(&dir);
    }
    RetentionPoint {
        persist,
        wall_ns_per_op: wall as f64 / APPENDS as f64,
        sim_ns_per_op: sim as f64 / APPENDS as f64,
    }
}

#[allow(clippy::disallowed_methods)] // reports wall-clock recovery cost
fn recovery_point(checkpoint_bytes: u64) -> RecoveryPoint {
    let dir = scratch_dir(&format!("recovery-{checkpoint_bytes}"));
    let cadence = (checkpoint_bytes > 0).then_some(checkpoint_bytes);
    let (fx, bs) = deploy(Some(dir.clone()), cadence);
    run_appends(&fx, &bs);

    // Kill and recover the full storage plane, summing how much log each
    // service had to replay past its newest checkpoint — the deterministic
    // recovery cost that checkpoint cadence exists to bound.
    let wall0 = Instant::now();
    let mut provider_replayed = 0u64;
    for pr in bs.providers() {
        let stored = pr.stored_bytes();
        pr.crash_wipe().expect("persistent provider wipes");
        provider_replayed += pr.recover().expect("provider recovers");
        assert_eq!(pr.stored_bytes(), stored, "recovery lost pages");
    }
    let mut meta_replayed = 0u64;
    for ms in bs.metadata_dht().servers() {
        ms.crash_wipe().expect("persistent meta server wipes");
        meta_replayed += ms.recover().expect("meta server recovers");
    }
    let recovery_wall_ns = wall0.elapsed().as_nanos() as u64;
    drop(bs);
    let _ = std::fs::remove_dir_all(&dir);
    RecoveryPoint {
        checkpoint_bytes,
        provider_replayed_bytes: provider_replayed,
        meta_replayed_bytes: meta_replayed,
        recovery_wall_ns,
    }
}

fn main() {
    let retention: Vec<RetentionPoint> = vec![retention_point(false), retention_point(true)];
    let recovery: Vec<RecoveryPoint> = CADENCES.iter().map(|&c| recovery_point(c)).collect();

    print_table(
        "Durability: per-append retention cost, memory vs pstore backend",
        &["backend", "wall ns/op", "sim ns/op"],
        &retention
            .iter()
            .map(|pt| {
                vec![
                    if pt.persist { "pstore" } else { "mem" }.to_string(),
                    format!("{:.0}", pt.wall_ns_per_op),
                    format!("{:.0}", pt.sim_ns_per_op),
                ]
            })
            .collect::<Vec<_>>(),
    );
    print_table(
        "Durability: full-plane crash recovery vs checkpoint cadence",
        &[
            "ckpt bytes",
            "provider replay B",
            "meta replay B",
            "recovery wall ns",
        ],
        &recovery
            .iter()
            .map(|pt| {
                vec![
                    if pt.checkpoint_bytes == 0 {
                        "never".to_string()
                    } else {
                        pt.checkpoint_bytes.to_string()
                    },
                    pt.provider_replayed_bytes.to_string(),
                    pt.meta_replayed_bytes.to_string(),
                    pt.recovery_wall_ns.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let json = to_json(&retention, &recovery);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_durability.json");
    // Diff BEFORE overwriting: a regressed run dies with the committed
    // baseline intact; the fresh numbers sit in a `.new` side file (what CI
    // uploads on failure) and are promoted only after the diff passes.
    let new_path = format!("{path}.new");
    std::fs::write(&new_path, &json).expect("write fresh bench record");
    match std::fs::read_to_string(path).ok() {
        None => println!("\nno committed baseline found; this run records the first one"),
        Some(base) => {
            diff(&base, &retention, &recovery);
            println!("\nbaseline diff passed: sim cost and replayed bytes within 1.25x");
        }
    }
    std::fs::write(path, &json).expect("write BENCH_durability.json");
    let _ = std::fs::remove_file(&new_path);
    println!("wrote {path}");

    // Acceptance gate on the deterministic currency: the tightest cadence
    // must bound replay to well under the no-checkpoint full-log scan, or
    // checkpointing is not doing its one job.
    let full = recovery.first().expect("no-checkpoint point");
    let tight = recovery.last().expect("tightest-cadence point");
    assert!(
        2 * tight.provider_replayed_bytes <= full.provider_replayed_bytes,
        "checkpoints failed to bound provider replay: {} B at {} B cadence vs {} B unbounded",
        tight.provider_replayed_bytes,
        tight.checkpoint_bytes,
        full.provider_replayed_bytes,
    );
    assert!(
        2 * tight.meta_replayed_bytes <= full.meta_replayed_bytes,
        "checkpoints failed to bound meta replay: {} B at {} B cadence vs {} B unbounded",
        tight.meta_replayed_bytes,
        tight.checkpoint_bytes,
        full.meta_replayed_bytes,
    );
    println!(
        "recovery gates passed: provider replay {} -> {} B, meta replay {} -> {} B (never -> {} B cadence)",
        full.provider_replayed_bytes,
        tight.provider_replayed_bytes,
        full.meta_replayed_bytes,
        tight.meta_replayed_bytes,
        tight.checkpoint_bytes,
    );
}

/// Diff this run's deterministic currencies against the committed baseline:
/// simulated append cost per backend, replayed bytes per cadence. Wall
/// fields are recorded but never gated.
fn diff(base: &str, retention: &[RetentionPoint], recovery: &[RecoveryPoint]) {
    let series = |name: &str| -> &str {
        let start = base.find(&format!("\"{name}\"")).expect("baseline series");
        let seg = &base[start..];
        &seg[..seg.find(']').expect("series closes")]
    };
    let seg = series("retention_series");
    for pt in retention {
        let obj = seg
            .split('{')
            .find(|o| json_num(o, "persist") == Some(u64::from(pt.persist) as f64))
            .expect("baseline retention point");
        let base_sim = json_num(obj, "sim_ns_per_op").expect("baseline sim_ns_per_op");
        assert!(
            pt.sim_ns_per_op <= base_sim * 1.25,
            "retention (persist={}): simulated append cost regressed {:.0} -> {:.0} ns/op",
            pt.persist,
            base_sim,
            pt.sim_ns_per_op,
        );
    }
    let seg = series("recovery_series");
    for pt in recovery {
        let obj = seg
            .split('{')
            .find(|o| json_num(o, "checkpoint_bytes") == Some(pt.checkpoint_bytes as f64))
            .unwrap_or_else(|| panic!("baseline lacks cadence {}", pt.checkpoint_bytes));
        for (key, got) in [
            ("provider_replayed_bytes", pt.provider_replayed_bytes),
            ("meta_replayed_bytes", pt.meta_replayed_bytes),
        ] {
            let base_v = json_num(obj, key).expect("baseline replay bytes");
            assert!(
                got as f64 <= base_v * 1.25,
                "recovery at cadence {}: {key} regressed {:.0} -> {} B vs baseline",
                pt.checkpoint_bytes,
                base_v,
                got,
            );
        }
    }
}

fn to_json(retention: &[RetentionPoint], recovery: &[RecoveryPoint]) -> String {
    let ret: Vec<String> = retention
        .iter()
        .map(|pt| {
            format!(
                "    {{\"persist\": {}, \"wall_ns_per_op\": {:.1}, \"sim_ns_per_op\": {:.1}}}",
                u8::from(pt.persist),
                pt.wall_ns_per_op,
                pt.sim_ns_per_op
            )
        })
        .collect();
    let rec: Vec<String> = recovery
        .iter()
        .map(|pt| {
            format!(
                "    {{\"checkpoint_bytes\": {}, \"provider_replayed_bytes\": {}, \"meta_replayed_bytes\": {}, \"recovery_wall_ns\": {}}}",
                pt.checkpoint_bytes,
                pt.provider_replayed_bytes,
                pt.meta_replayed_bytes,
                pt.recovery_wall_ns
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"durability\",\n  \"page_size\": {PS},\n  \"appends\": {APPENDS},\n  \"retention_series\": [\n{}\n  ],\n  \"recovery_series\": [\n{}\n  ]\n}}\n",
        ret.join(",\n"),
        rec.join(",\n")
    )
}
