//! Extension E1 (paper §5, future work) — pipelined Map/Reduce stages:
//! "the reducers generate the data and append it to a file that is at the
//! same time, read and processed by the mappers [of the next stage]".
//!
//! Setup: stage 1 is a reduce-heavy job on a 16-worker sub-cluster whose 64
//! reducers append ~6.3 GB to one shared BSFS file in 4 waves; stage 2 is a
//! set of 16 consumers (the next stage's mappers) that process the file
//! chunk-by-chunk (strided ownership). In the *sequential* schedule the
//! consumers wait for stage 1 to finish; in the *pipelined* schedule they
//! tail the file and process each wave while the next is still computing —
//! exactly the overlap the paper argues Figures 4/5 make safe.

use std::sync::Arc;

use bench_suite::{path, print_table, CHUNK};
use blobseer::BlobSeerConfig;
use bsfs::Bsfs;
use dfs::FileSystem;
use fabric::prelude::*;
use fabric::ClusterSpec;
use mapreduce::{GhostProfile, JobConf, MrCluster, MrConfig, OutputMode};

const CONSUMERS: u32 = 16;
const REDUCERS: u32 = 64;
/// Stage-2 per-byte CPU (same ballpark as a scan-heavy map phase).
const STAGE2_CPU_PER_BYTE: f64 = 1000.0;

/// Stage-1 profile: light maps, heavy reducers -> the append stream spreads
/// over several reduce waves instead of one synchronized burst.
fn stage1_profile() -> GhostProfile {
    GhostProfile {
        input_record_bytes: 32,
        map_output_ratio: 10.08,
        map_cpu_per_byte: 1_000.0,
        reduce_output_ratio: 1.0,
        reduce_cpu_per_byte: 1_500.0,
        combine_output_ratio: 1.0, // inert: datajoin has no combiner
    }
}

fn pipeline_run(overlap: bool, seed: u64) -> (f64, f64) {
    let fx = Fabric::sim_seeded(ClusterSpec::orsay_270(), seed);
    let bsfs = Bsfs::deploy_paper(&fx, BlobSeerConfig::paper()).expect("bsfs");
    let fs: Arc<dyn FileSystem> = Arc::new(bsfs);
    // A 16-worker sub-cluster with one reduce slot each: 64 reducers run in
    // 4 waves, so the shared file grows in bursts.
    let mr_cfg = MrConfig {
        jobtracker: NodeId(2),
        tasktrackers: (23..39).map(NodeId).collect(),
        map_slots: 2,
        reduce_slots: 1,
        heartbeat_ns: 3_000 * fabric::MILLIS,
        locality_delay_ns: 4_500 * fabric::MILLIS,
    };
    let mr = MrCluster::start(&fx, fs.clone(), mr_cfg);

    let stage1_done = fx.gate();
    let stage1_secs: Arc<parking_lot::Mutex<f64>> = Arc::new(parking_lot::Mutex::new(0.0));

    {
        let fs2 = fs.clone();
        let mr2 = mr.clone();
        let done = stage1_done.clone();
        let s1 = stage1_secs.clone();
        fx.spawn(NodeId(23), "stage1-driver", move |p| {
            for name in ["/in/a", "/in/b"] {
                let mut w = fs2.create(p, &path(name)).unwrap();
                w.write(p, Payload::ghost(320 * 1024 * 1024)).unwrap();
                w.close(p).unwrap();
            }
            let job = JobConf {
                name: "stage1".into(),
                inputs: vec![path("/in/a"), path("/in/b")],
                output_dir: path("/stage1"),
                num_reducers: REDUCERS,
                output_mode: OutputMode::SharedAppendFile,
                user: workloads::datajoin::user_fns(),
                ghost: Some(stage1_profile()),
                shuffle: mapreduce::ShuffleTuning::default(),
            };
            let r = mr2.submit(job).wait(p);
            *s1.lock() = r.elapsed_secs();
            done.set();
        });
    }

    // Stage-2 consumers: strided chunk ownership (consumer i processes
    // chunks c with c % CONSUMERS == i), so every append wave spreads work
    // over all consumers.
    let consumers_done = fx.queue::<u64>();
    for i in 0..CONSUMERS {
        let fs2 = fs.clone();
        let d2 = stage1_done.clone();
        let q2 = consumers_done.clone();
        fx.spawn(NodeId(40 + i), format!("stage2-consumer{i}"), move |p| {
            if !overlap {
                d2.wait(p);
            }
            let out = path("/stage1/result");
            let mut next = i as u64;
            // Process owned chunks as they become visible; the end of the
            // stream is known only once stage 1 completes (per-reducer
            // rounding makes the exact final size data-dependent).
            loop {
                let visible = fs2.status(p, &out).map(|s| s.len).unwrap_or(0);
                let off = next * CHUNK;
                if off < visible && (off + CHUNK <= visible || d2.is_set()) {
                    let n = CHUNK.min(visible - off);
                    let mut r = fs2.open(p, &out).unwrap();
                    let got = r.read_at(p, off, n).unwrap();
                    debug_assert_eq!(got.len(), n);
                    p.compute(p.node(), (n as f64 * STAGE2_CPU_PER_BYTE) as u64);
                    next += CONSUMERS as u64;
                    continue;
                }
                if d2.is_set() && off >= visible {
                    break; // stream complete and fully consumed
                }
                p.sleep(2_000 * fabric::MILLIS);
            }
            q2.send(p.now());
        });
    }

    // Coordinator: wait for consumers + stage 1, then stop the framework.
    let makespan: Arc<parking_lot::Mutex<u64>> = Arc::new(parking_lot::Mutex::new(0));
    {
        let mr2 = mr.clone();
        let q = consumers_done;
        let m2 = makespan.clone();
        let d3 = stage1_done;
        fx.spawn(NodeId(22), "coordinator", move |p| {
            let mut latest = 0u64;
            for _ in 0..CONSUMERS {
                latest = latest.max(q.recv(p).expect("consumer finished"));
            }
            d3.wait(p);
            *m2.lock() = latest.max(p.now());
            mr2.shutdown();
        });
    }
    fx.run();
    let total = fabric::ns_to_secs(*makespan.lock());
    let s1 = *stage1_secs.lock();
    (total, s1)
}

fn main() {
    let (sequential, stage1_a) = pipeline_run(false, 7001);
    let (pipelined, stage1_b) = pipeline_run(true, 7001);
    print_table(
        "Extension E1 (paper §5): two-stage pipeline over the shared append file",
        &["schedule", "stage 1 (s)", "pipeline makespan (s)"],
        &[
            vec![
                "sequential (stage2 after stage1)".into(),
                format!("{stage1_a:.0}"),
                format!("{sequential:.0}"),
            ],
            vec![
                "pipelined (stage2 tails stage1)".into(),
                format!("{stage1_b:.0}"),
                format!("{pipelined:.0}"),
            ],
        ],
    );
    let speedup = sequential / pipelined;
    println!(
        "\nshape: pipelining speedup {speedup:.2}x — overlapping the stages hides most of \
         stage 2 inside stage 1's reduce waves, as the paper's §5 anticipates; stage 1 itself is \
         barely disturbed by the concurrent readers (Figures 4/5)."
    );
    let disturbance = (stage1_b - stage1_a) / stage1_a;
    println!(
        "shape: stage-1 slowdown caused by concurrent stage-2 readers: {:.1}%",
        disturbance * 100.0
    );
    assert!(
        speedup > 1.1,
        "pipelining should beat the sequential schedule (got {speedup:.2}x)"
    );
    assert!(
        disturbance < 0.15,
        "stage 1 should be barely disturbed (got {:.1}%)",
        disturbance * 100.0
    );
}
