//! Figure 3 — "Performance of BSFS when concurrent clients append data to
//! the same file": N ∈ [1, 246] clients each append a 64 MB chunk to one
//! shared file on the 270-node cluster; the paper reports that the average
//! per-client throughput stays high as N grows.
//!
//! This is the figure the sharded version-manager control plane exists
//! for: under N-way append concurrency the only serialization left is the
//! protocol's own per-BLOB version ordering (plus the modeled VM CPU
//! charge), never a VM-wide lock. The driver records its deterministic
//! currencies — per-client MB/s, virtual completion seconds, wire
//! transfers, DHT puts and put-RPCs, all exact for fixed seeds — into
//! `BENCH_fig3_appends.json` at the repo root and diffs each run against
//! the committed baseline, so a control-plane regression fails the build
//! the same way A4 and fig6 regressions do.

use bench_suite::{fig3_point, fig3_point_detail, json_series, print_table, relative_spread};

const BASELINE_TOLERANCE: f64 = 1.25;

fn main() {
    let clients = [1u32, 20, 40, 80, 120, 160, 200, 246];
    let reps = 3u64;
    let mut rows = Vec::new();
    let mut series = Vec::new();
    let mut details = Vec::new();
    for &n in &clients {
        // Rep 0 carries the recorded deterministic currencies; the printed
        // throughput averages all reps (each rep deterministic on its seed).
        let d0 = fig3_point_detail(n, 1000);
        let avg: f64 = (d0.per_client_mbps
            + (1..reps).map(|r| fig3_point(n, 1000 + r)).sum::<f64>())
            / reps as f64;
        series.push(avg);
        details.push(d0);
        rows.push(vec![
            n.to_string(),
            format!("{avg:.1}"),
            format!("{:.1}", avg * n as f64),
            format!("{:.1}", d0.sim_secs),
            d0.transfers.to_string(),
            format!("{}/{}", d0.dht_put_rpcs, d0.dht_puts),
        ]);
    }
    print_table(
        "Figure 3: concurrent appends to the same file (BSFS, 64 MB chunks, page = 64 MB)",
        &[
            "appenders",
            "per-client MB/s",
            "aggregate MB/s",
            "sim secs",
            "transfers",
            "put rpcs/nodes",
        ],
        &rows,
    );
    let retention = series.last().unwrap() / series.first().unwrap();
    println!(
        "\nshape: throughput retention at N=246 vs N=1: {:.2} (paper: \"BSFS maintains a good \
         throughput as the number of appenders increases\"); spread {:.2}",
        retention,
        relative_spread(&series)
    );
    assert!(
        retention > 0.35,
        "append throughput collapsed under concurrency: retention {retention:.2}"
    );

    // Record the run and diff the deterministic currencies against the
    // committed baseline. Diff BEFORE overwriting: a regressed run must die
    // with the committed baseline intact; the fresh numbers land in a
    // `.new` side file (what CI uploads on failure, so a deliberate
    // re-record has the data) and are promoted only after the diff passes.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fig3_appends.json");
    let json = to_json(&clients, &series, &details);
    let new_path = format!("{path}.new");
    std::fs::write(&new_path, &json).expect("write fresh bench record");
    match std::fs::read_to_string(path).ok() {
        None => println!("no committed baseline found; this run records the first one"),
        Some(base) => diff_against_baseline(&base, &clients, &series, &details),
    }
    std::fs::write(path, &json).expect("write BENCH_fig3_appends.json");
    let _ = std::fs::remove_file(&new_path);
    println!("wrote {path}");
}

/// Fail when this run regressed vs the committed baseline, pointwise on the
/// deterministic currencies: per-client throughput must not fall, and
/// completion time / wire transfers / put round-trips must not grow, beyond
/// tolerance. A legitimate cost change re-records the JSON deliberately.
fn diff_against_baseline(
    base: &str,
    clients: &[u32],
    series: &[f64],
    details: &[bench_suite::Fig3Point],
) {
    let base_clients = json_series(base, "clients");
    assert_eq!(
        base_clients.len(),
        clients.len(),
        "baseline sweep shape changed; re-record BENCH_fig3_appends.json deliberately"
    );
    let base_mbps = json_series(base, "per_client_mbps");
    let base_secs = json_series(base, "sim_secs");
    let base_transfers = json_series(base, "transfers");
    let base_rpcs = json_series(base, "dht_put_rpcs");
    for (i, &n) in clients.iter().enumerate() {
        assert!(
            series[i] >= base_mbps[i] / BASELINE_TOLERANCE,
            "N={n}: per-client throughput regressed {:.1} -> {:.1} MB/s vs baseline",
            base_mbps[i],
            series[i],
        );
        assert!(
            details[i].sim_secs <= base_secs[i] * BASELINE_TOLERANCE,
            "N={n}: completion regressed {:.1}s -> {:.1}s vs baseline",
            base_secs[i],
            details[i].sim_secs,
        );
        assert!(
            (details[i].transfers as f64) <= base_transfers[i] * BASELINE_TOLERANCE,
            "N={n}: wire transfers regressed {} -> {} vs baseline",
            base_transfers[i],
            details[i].transfers,
        );
        assert!(
            (details[i].dht_put_rpcs as f64) <= base_rpcs[i] * BASELINE_TOLERANCE,
            "N={n}: DHT put round-trips regressed {} -> {} vs baseline",
            base_rpcs[i],
            details[i].dht_put_rpcs,
        );
    }
    println!(
        "baseline diff passed: throughput, completion, transfers and put \
         round-trips within {BASELINE_TOLERANCE}x pointwise"
    );
}

fn to_json(clients: &[u32], series: &[f64], details: &[bench_suite::Fig3Point]) -> String {
    let fmt_u32 = |v: &[u32]| v.iter().map(u32::to_string).collect::<Vec<_>>().join(", ");
    let fmt_f = |v: Vec<f64>| {
        v.iter()
            .map(|x| format!("{x:.2}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let fmt_u = |v: Vec<u64>| v.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
    format!(
        "{{\n  \"bench\": \"fig3_concurrent_appends\",\n  \"clients\": [{}],\n  \
         \"per_client_mbps\": [{}],\n  \"sim_secs\": [{}],\n  \"transfers\": [{}],\n  \
         \"dht_puts\": [{}],\n  \"dht_put_rpcs\": [{}]\n}}\n",
        fmt_u32(clients),
        fmt_f(series.to_vec()),
        fmt_f(details.iter().map(|d| d.sim_secs).collect()),
        fmt_u(details.iter().map(|d| d.transfers).collect()),
        fmt_u(details.iter().map(|d| d.dht_puts).collect()),
        fmt_u(details.iter().map(|d| d.dht_put_rpcs).collect()),
    )
}
