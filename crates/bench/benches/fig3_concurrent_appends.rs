//! Figure 3 — "Performance of BSFS when concurrent clients append data to
//! the same file": N ∈ [1, 246] clients each append a 64 MB chunk to one
//! shared file on the 270-node cluster; the paper reports that the average
//! per-client throughput stays high as N grows.

use bench_suite::{fig3_point, print_table, relative_spread};

fn main() {
    let clients = [1u32, 20, 40, 80, 120, 160, 200, 246];
    let reps = 3u64;
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for &n in &clients {
        let avg: f64 = (0..reps).map(|r| fig3_point(n, 1000 + r)).sum::<f64>() / reps as f64;
        series.push(avg);
        rows.push(vec![
            n.to_string(),
            format!("{avg:.1}"),
            format!("{:.1}", avg * n as f64),
        ]);
    }
    print_table(
        "Figure 3: concurrent appends to the same file (BSFS, 64 MB chunks, page = 64 MB)",
        &["appenders", "per-client MB/s", "aggregate MB/s"],
        &rows,
    );
    let retention = series.last().unwrap() / series.first().unwrap();
    println!(
        "\nshape: throughput retention at N=246 vs N=1: {:.2} (paper: \"BSFS maintains a good \
         throughput as the number of appenders increases\"); spread {:.2}",
        retention,
        relative_spread(&series)
    );
    assert!(
        retention > 0.35,
        "append throughput collapsed under concurrency: retention {retention:.2}"
    );
}
