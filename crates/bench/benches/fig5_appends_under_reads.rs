//! Figure 5 — "Impact of concurrent reads on concurrent appends to the
//! same file": 100 appenders (10 × 64 MB each) measure their average append
//! throughput while 0→140 readers (10 × 64 MB each) scan the same file.
//! The paper: appenders maintain their throughput as readers are added.
//!
//! This is the storage-plane contention figure: appender page streams
//! (batched `put_pages`, leased reservations) and reader fetches (batched
//! `get_pages`) meet at the very same providers, and reader metadata
//! traffic (snapshot lookups, index syncs, leaf gets) rides the same
//! sharded control plane the appenders use — if any of those planes grew a
//! shared lock or a per-page RPC loop back, this curve bends. The driver
//! records its deterministic currencies — per-appender and per-reader MB/s,
//! virtual completion seconds, wire transfers, provider put/get round-trips,
//! all exact for fixed seeds — into `BENCH_fig5_mixed.json` at the repo
//! root and diffs each run against the committed baseline, exactly like
//! A4/fig3/fig6.

use bench_suite::{json_series, mixed_point_detail, print_table, relative_spread, MixedPoint};

const BASELINE_TOLERANCE: f64 = 1.25;

fn main() {
    let readers = [0u32, 20, 40, 60, 80, 100, 120, 140];
    let mut rows = Vec::new();
    let mut series = Vec::new();
    let mut details = Vec::new();
    for &r in &readers {
        // Readers scan a pre-filled region; mixed_point prefills r*10 chunks.
        let d = mixed_point_detail(r, 10, 100, 10, 3000 + r as u64);
        series.push(d.append_mbps);
        details.push(d);
        rows.push(vec![
            r.to_string(),
            format!("{:.1}", d.append_mbps),
            if r == 0 {
                "-".into()
            } else {
                format!("{:.1}", d.read_mbps)
            },
            format!("{:.1}", d.sim_secs),
            d.transfers.to_string(),
            format!("{}/{}", d.put_rpcs, d.get_rpcs),
        ]);
    }
    print_table(
        "Figure 5: append throughput of 100 appenders vs number of concurrent readers",
        &[
            "readers",
            "append MB/s (avg of 100 appenders)",
            "read MB/s",
            "sim secs",
            "transfers",
            "put/get rpcs",
        ],
        &rows,
    );
    let retention = series.last().unwrap() / series.first().unwrap();
    println!(
        "\nshape: append throughput with 140 readers vs none: {:.2} (paper: \"concurrent \
         appenders maintain their throughput as well, when the number of concurrent readers \
         from a shared file increases\"); spread {:.2}",
        retention,
        relative_spread(&series)
    );
    assert!(
        retention > 0.5,
        "appenders were not isolated from readers: retention {retention:.2}"
    );

    // Record the run and diff the deterministic currencies against the
    // committed baseline. Diff BEFORE overwriting: a regressed run must die
    // with the committed baseline intact; the fresh numbers land in a
    // `.new` side file (what CI uploads on failure, so a deliberate
    // re-record has the data) and are promoted only after the diff passes.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fig5_mixed.json");
    let json = to_json(&readers, &details);
    let new_path = format!("{path}.new");
    std::fs::write(&new_path, &json).expect("write fresh bench record");
    match std::fs::read_to_string(path).ok() {
        None => println!("no committed baseline found; this run records the first one"),
        Some(base) => diff_against_baseline(&base, &readers, &details),
    }
    std::fs::write(path, &json).expect("write BENCH_fig5_mixed.json");
    let _ = std::fs::remove_file(&new_path);
    println!("wrote {path}");
}

/// Fail when this run regressed vs the committed baseline, pointwise on the
/// deterministic currencies: appender (and reader) throughput must not
/// fall, and completion time / wire transfers / provider round-trips must
/// not grow, beyond tolerance. A legitimate cost change re-records the JSON
/// deliberately.
fn diff_against_baseline(base: &str, readers: &[u32], details: &[MixedPoint]) {
    let base_readers = json_series(base, "readers");
    assert_eq!(
        base_readers.len(),
        readers.len(),
        "baseline sweep shape changed; re-record BENCH_fig5_mixed.json deliberately"
    );
    let base_append = json_series(base, "append_mbps");
    let base_read = json_series(base, "read_mbps");
    let base_secs = json_series(base, "sim_secs");
    let base_transfers = json_series(base, "transfers");
    let base_put = json_series(base, "put_rpcs");
    let base_get = json_series(base, "get_rpcs");
    for (i, &r) in readers.iter().enumerate() {
        let d = &details[i];
        assert!(
            d.append_mbps >= base_append[i] / BASELINE_TOLERANCE,
            "readers={r}: append throughput regressed {:.1} -> {:.1} MB/s vs baseline",
            base_append[i],
            d.append_mbps,
        );
        assert!(
            d.read_mbps >= base_read[i] / BASELINE_TOLERANCE,
            "readers={r}: read throughput regressed {:.1} -> {:.1} MB/s vs baseline",
            base_read[i],
            d.read_mbps,
        );
        assert!(
            d.sim_secs <= base_secs[i] * BASELINE_TOLERANCE,
            "readers={r}: completion regressed {:.1}s -> {:.1}s vs baseline",
            base_secs[i],
            d.sim_secs,
        );
        assert!(
            (d.transfers as f64) <= base_transfers[i] * BASELINE_TOLERANCE,
            "readers={r}: wire transfers regressed {} -> {} vs baseline",
            base_transfers[i],
            d.transfers,
        );
        assert!(
            (d.put_rpcs as f64) <= base_put[i] * BASELINE_TOLERANCE,
            "readers={r}: provider put round-trips regressed {} -> {} vs baseline",
            base_put[i],
            d.put_rpcs,
        );
        assert!(
            (d.get_rpcs as f64) <= base_get[i] * BASELINE_TOLERANCE,
            "readers={r}: provider get round-trips regressed {} -> {} vs baseline",
            base_get[i],
            d.get_rpcs,
        );
    }
    println!(
        "baseline diff passed: throughputs, completion, transfers and provider \
         round-trips within {BASELINE_TOLERANCE}x pointwise"
    );
}

fn to_json(readers: &[u32], details: &[MixedPoint]) -> String {
    let fmt_u32 = |v: &[u32]| v.iter().map(u32::to_string).collect::<Vec<_>>().join(", ");
    let fmt_f = |v: Vec<f64>| {
        v.iter()
            .map(|x| format!("{x:.2}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let fmt_u = |v: Vec<u64>| v.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
    format!(
        "{{\n  \"bench\": \"fig5_appends_under_reads\",\n  \"readers\": [{}],\n  \
         \"append_mbps\": [{}],\n  \"read_mbps\": [{}],\n  \"sim_secs\": [{}],\n  \
         \"transfers\": [{}],\n  \"put_rpcs\": [{}],\n  \"get_rpcs\": [{}]\n}}\n",
        fmt_u32(readers),
        fmt_f(details.iter().map(|d| d.append_mbps).collect()),
        fmt_f(details.iter().map(|d| d.read_mbps).collect()),
        fmt_f(details.iter().map(|d| d.sim_secs).collect()),
        fmt_u(details.iter().map(|d| d.transfers).collect()),
        fmt_u(details.iter().map(|d| d.put_rpcs).collect()),
        fmt_u(details.iter().map(|d| d.get_rpcs).collect()),
    )
}
