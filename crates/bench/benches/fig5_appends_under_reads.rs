//! Figure 5 — "Impact of concurrent reads on concurrent appends to the
//! same file": 100 appenders (10 × 64 MB each) measure their average append
//! throughput while 0→140 readers (10 × 64 MB each) scan the same file.
//! The paper: appenders maintain their throughput as readers are added.
//!
//! Together with fig3 this is the measurement the sharded version-manager
//! control plane answers to: reader traffic (snapshot lookups, index syncs,
//! leaf fetches) and appender traffic (assign/commit) meet only at the
//! per-BLOB state — there is no VM-wide lock for the mixed workload to
//! queue on, so the isolation the paper credits to versioning is not
//! undermined by an implementation-level serialization point.

use bench_suite::{mixed_point, print_table, relative_spread};

fn main() {
    let readers = [0u32, 20, 40, 60, 80, 100, 120, 140];
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for &r in &readers {
        // Readers scan a pre-filled region; mixed_point prefills r*10 chunks.
        let (read_mbps, append_mbps) = mixed_point(r, 10, 100, 10, 3000 + r as u64);
        series.push(append_mbps);
        rows.push(vec![
            r.to_string(),
            format!("{append_mbps:.1}"),
            if r == 0 {
                "-".into()
            } else {
                format!("{read_mbps:.1}")
            },
        ]);
    }
    print_table(
        "Figure 5: append throughput of 100 appenders vs number of concurrent readers",
        &["readers", "append MB/s (avg of 100 appenders)", "read MB/s"],
        &rows,
    );
    let retention = series.last().unwrap() / series.first().unwrap();
    println!(
        "\nshape: append throughput with 140 readers vs none: {:.2} (paper: \"concurrent \
         appenders maintain their throughput as well, when the number of concurrent readers \
         from a shared file increases\"); spread {:.2}",
        retention,
        relative_spread(&series)
    );
    assert!(
        retention > 0.5,
        "appenders were not isolated from readers: retention {retention:.2}"
    );
}
