//! `bench-suite` — harnesses that regenerate every figure of the paper's
//! evaluation (§4), plus ablations and the §5 pipeline extension.
//!
//! Each `benches/figN_*.rs` target is a plain `main` (no criterion harness)
//! that runs the experiment on the simulated 270-node Orsay cluster and
//! prints the series the paper plots; `benches/micro.rs` holds criterion
//! microbenchmarks of the core data structures. Absolute numbers depend on
//! the fluid network model, not the authors' 2009 testbed — the *shapes*
//! (who wins, what stays flat, where crossings happen) are the reproduction
//! targets; see EXPERIMENTS.md.

use std::sync::Arc;

use blobseer::{BlobSeerConfig, Layout};
use bsfs::Bsfs;
use dfs::{DfsPath, FileSystem};
use fabric::prelude::*;
use fabric::ClusterSpec;
use hdfs_sim::{HdfsConfig, HdfsSim};
use mapreduce::{JobConf, MrCluster, MrConfig, OutputMode, ShuffleTuning};
use parking_lot::Mutex;

/// One chunk, as in the paper: 64 MB (page size == HDFS chunk size, §4.1).
pub const CHUNK: u64 = 64 * 1024 * 1024;

/// MB/s from bytes and nanoseconds.
pub fn mbps(bytes: u64, ns: u64) -> f64 {
    if ns == 0 {
        return 0.0;
    }
    (bytes as f64 / 1.0e6) / (ns as f64 / 1e9)
}

/// Print a formatted results table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Deploy BSFS with the paper layout on a fresh 270-node simulated cluster.
pub fn paper_bsfs(seed: u64) -> (Fabric, Bsfs) {
    let fx = Fabric::sim_seeded(ClusterSpec::orsay_270(), seed);
    let fs = Bsfs::deploy_paper(&fx, BlobSeerConfig::paper()).expect("deploy bsfs");
    (fx, fs)
}

/// Deploy BSFS with a custom BlobSeer config (ablations).
pub fn paper_bsfs_with(seed: u64, config: BlobSeerConfig) -> (Fabric, Bsfs) {
    let fx = Fabric::sim_seeded(ClusterSpec::orsay_270(), seed);
    let fs = Bsfs::deploy_paper(&fx, config).expect("deploy bsfs");
    (fx, fs)
}

/// Deploy BSFS with a custom layout (metadata-provider ablation).
pub fn paper_bsfs_with_layout(seed: u64, config: BlobSeerConfig, layout: Layout) -> (Fabric, Bsfs) {
    let fx = Fabric::sim_seeded(ClusterSpec::orsay_270(), seed);
    let fs = Bsfs::deploy(&fx, config, layout).expect("deploy bsfs");
    (fx, fs)
}

/// Clients are "launched on the same machines as the datanodes (data
/// providers, respectively)" (§4.2): nodes 23..270 in the paper layout.
pub fn provider_node(i: usize) -> NodeId {
    NodeId(23 + (i as u32 % 247))
}

pub fn path(s: &str) -> DfsPath {
    DfsPath::new(s).unwrap()
}

/// Figure 3 point: N concurrent clients each append one 64 MB chunk to the
/// same BSFS file; returns the average per-client append throughput (MB/s).
pub fn fig3_point(n_clients: u32, seed: u64) -> f64 {
    let (fx, fs) = paper_bsfs(seed);
    fig3_point_on(&fx, &fs, n_clients)
}

/// One Figure 3 measurement with the deterministic sim currencies the
/// control-plane baseline (`BENCH_fig3_appends.json`) records and diffs:
/// everything here is exact for a fixed seed — wall clock never enters.
#[derive(Debug, Clone, Copy)]
pub struct Fig3Point {
    /// Average per-client append throughput, MB/s (virtual time).
    pub per_client_mbps: f64,
    /// Virtual completion time of the whole run, seconds.
    pub sim_secs: f64,
    /// Wire transfers issued across the run (every message counts).
    pub transfers: u64,
    /// Metadata tree-node puts across the DHT.
    pub dht_puts: u64,
    /// Put wire round-trips that carried them (batching win visible).
    pub dht_put_rpcs: u64,
}

/// Figure 3 point plus the deterministic currencies of its run.
pub fn fig3_point_detail(n_clients: u32, seed: u64) -> Fig3Point {
    let (fx, fs) = paper_bsfs(seed);
    let per_client_mbps = fig3_point_on(&fx, &fs, n_clients);
    let (dht_puts, dht_put_rpcs) = fs
        .store()
        .metadata_dht()
        .servers()
        .iter()
        .fold((0, 0), |(n, r), s| {
            (n + s.op_counts().0, r + s.rpc_counts().0)
        });
    Fig3Point {
        per_client_mbps,
        sim_secs: fx.now() as f64 / 1e9,
        transfers: fx.stats().transfers,
        dht_puts,
        dht_put_rpcs,
    }
}

/// Figure 3 body against an existing deployment (used by ablations too).
pub fn fig3_point_on(fx: &Fabric, fs: &Bsfs, n_clients: u32) -> f64 {
    let start_gate = fx.gate();
    let file = path("/bench/shared");
    {
        let fs2 = fs.clone();
        let g = start_gate.clone();
        let f2 = file.clone();
        fx.spawn(NodeId(23), "setup", move |p| {
            let mut w = fs2.create(p, &f2).unwrap();
            w.close(p).unwrap();
            g.set();
        });
    }
    let times: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    for i in 0..n_clients {
        let fs2 = fs.clone();
        let g = start_gate.clone();
        let t2 = times.clone();
        let f2 = file.clone();
        fx.spawn(
            provider_node(i as usize),
            format!("appender{i}"),
            move |p| {
                g.wait(p);
                let chunk = fs2.default_block_size();
                let t0 = p.now();
                fs2.append_all(p, &f2, Payload::ghost(chunk)).unwrap();
                t2.lock().push(p.now() - t0);
            },
        );
    }
    fx.run();
    let times = times.lock();
    assert_eq!(times.len(), n_clients as usize);
    let chunk = fs.default_block_size();
    times.iter().map(|&ns| mbps(chunk, ns)).sum::<f64>() / n_clients as f64
}

/// Figures 4/5 point: `readers` concurrent readers (each reading
/// `read_chunks` chunks of a pre-filled region) run against `appenders`
/// concurrent appenders (each appending `append_chunks` chunks). Returns
/// `(avg read MB/s, avg append MB/s)`.
pub fn mixed_point(
    readers: u32,
    read_chunks: u64,
    appenders: u32,
    append_chunks: u64,
    seed: u64,
) -> (f64, f64) {
    let d = mixed_point_detail(readers, read_chunks, appenders, append_chunks, seed);
    (d.read_mbps, d.append_mbps)
}

/// One mixed-workload measurement with the deterministic sim currencies the
/// storage-plane baseline (`BENCH_fig5_mixed.json`) records and diffs:
/// everything here is exact for a fixed seed — wall clock never enters.
#[derive(Debug, Clone, Copy)]
pub struct MixedPoint {
    /// Average per-reader throughput, MB/s (virtual time); 0 at readers=0.
    pub read_mbps: f64,
    /// Average per-appender throughput, MB/s (virtual time).
    pub append_mbps: f64,
    /// Virtual completion time of the whole run, seconds.
    pub sim_secs: f64,
    /// Wire transfers issued across the run (every message counts).
    pub transfers: u64,
    /// Provider put wire round-trips (the appenders' page streams).
    pub put_rpcs: u64,
    /// Provider get wire round-trips (the readers' batched fetches).
    pub get_rpcs: u64,
}

/// Figures 4/5 point plus the deterministic currencies of its run.
pub fn mixed_point_detail(
    readers: u32,
    read_chunks: u64,
    appenders: u32,
    append_chunks: u64,
    seed: u64,
) -> MixedPoint {
    let (fx, fs) = paper_bsfs(seed);
    let start_gate = fx.gate();
    let file = path("/bench/shared");
    let prefill_chunks = readers as u64 * read_chunks;
    {
        let fs2 = fs.clone();
        let g = start_gate.clone();
        let f2 = file.clone();
        fx.spawn(NodeId(23), "setup", move |p| {
            let mut w = fs2.create(p, &f2).unwrap();
            w.close(p).unwrap();
            // Pre-fill the disjoint regions the readers will scan,
            // 100 chunks per append (setup cost, not measured).
            let mut left = prefill_chunks;
            while left > 0 {
                let n = left.min(100);
                fs2.append_all(p, &f2, Payload::ghost(n * CHUNK)).unwrap();
                left -= n;
            }
            g.set();
        });
    }
    let read_times: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let append_times: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    for i in 0..readers {
        let fs2 = fs.clone();
        let g = start_gate.clone();
        let t2 = read_times.clone();
        let f2 = file.clone();
        fx.spawn(provider_node(i as usize), format!("reader{i}"), move |p| {
            g.wait(p);
            let mut r = fs2.open(p, &f2).unwrap();
            let region_start = i as u64 * read_chunks * CHUNK;
            let t0 = p.now();
            for c in 0..read_chunks {
                let got = r.read_at(p, region_start + c * CHUNK, CHUNK).unwrap();
                assert_eq!(got.len(), CHUNK);
            }
            t2.lock().push(p.now() - t0);
        });
    }
    for i in 0..appenders {
        let fs2 = fs.clone();
        let g = start_gate.clone();
        let t2 = append_times.clone();
        let f2 = file.clone();
        fx.spawn(
            provider_node(readers as usize + i as usize),
            format!("appender{i}"),
            move |p| {
                g.wait(p);
                let t0 = p.now();
                for _ in 0..append_chunks {
                    fs2.append_all(p, &f2, Payload::ghost(CHUNK)).unwrap();
                }
                t2.lock().push(p.now() - t0);
            },
        );
    }
    fx.run();
    let avg = |v: &[u64], chunks: u64| -> f64 {
        if v.is_empty() {
            return 0.0;
        }
        v.iter().map(|&ns| mbps(chunks * CHUNK, ns)).sum::<f64>() / v.len() as f64
    };
    let reads = read_times.lock().clone();
    let appends = append_times.lock().clone();
    let (put_rpcs, get_rpcs) = fs.store().providers().iter().fold((0, 0), |(pu, ge), pr| {
        let (p_, g_) = pr.rpc_counts();
        (pu + p_, ge + g_)
    });
    MixedPoint {
        read_mbps: avg(&reads, read_chunks),
        append_mbps: avg(&appends, append_chunks),
        sim_secs: fx.now() as f64 / 1e9,
        transfers: fx.stats().transfers,
        put_rpcs,
        get_rpcs,
    }
}

/// Which storage system a Figure 6 run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig6System {
    /// Original Hadoop on HDFS: one output file per reducer.
    HdfsPerReducer,
    /// Modified Hadoop on BSFS: all reducers append to one shared file.
    BsfsSharedAppend,
}

/// One Figure 6 measurement, including the shuffle-wire observability the
/// data-plane batching work added.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Point {
    pub secs: f64,
    pub output_files: u64,
    pub shuffle_bytes: u64,
    /// Map-output segments reducers pulled. With the tier-2 node combine
    /// (the default) these are combined (node, partition) segments, bounded
    /// by map-nodes × reducers rather than maps × reducers.
    pub shuffle_segments: u64,
    /// Host-grouped wire transfers that carried them — one per
    /// (map-node, reducer) pair.
    pub shuffle_transfers: u64,
}

/// Figure 6 point: the data join application with ghost payloads calibrated
/// to the paper's volumes (2×320 MB in, ≈6.3 GB out), on the 270-node
/// cluster.
pub fn fig6_point(system: Fig6System, reducers: u32, seed: u64) -> Fig6Point {
    let fx = Fabric::sim_seeded(ClusterSpec::orsay_270(), seed);
    let fs: Arc<dyn FileSystem> = match system {
        Fig6System::BsfsSharedAppend => {
            Arc::new(Bsfs::deploy_paper(&fx, BlobSeerConfig::paper()).expect("bsfs"))
        }
        Fig6System::HdfsPerReducer => Arc::new(HdfsSim::deploy_paper(&fx, HdfsConfig::paper())),
    };
    let mode = match system {
        Fig6System::BsfsSharedAppend => OutputMode::SharedAppendFile,
        Fig6System::HdfsPerReducer => OutputMode::PerReducerFiles,
    };
    let mr_cfg = MrConfig::paper(fx.spec()).with_heartbeat_ns(3_000 * fabric::MILLIS);
    let mr = MrCluster::start(&fx, fs.clone(), mr_cfg);
    let fs2 = fs.clone();
    let mr2 = mr.clone();
    let driver = fx.spawn(NodeId(23), "driver", move |p| {
        // Two 320 MB input files (5 chunks each -> 10 map tasks, §4.3).
        for name in ["/in/a", "/in/b"] {
            let mut w = fs2.create(p, &path(name)).unwrap();
            w.write(p, Payload::ghost(320 * 1024 * 1024)).unwrap();
            w.close(p).unwrap();
        }
        let job = JobConf {
            name: format!("datajoin-{}", mode.label()),
            inputs: vec![path("/in/a"), path("/in/b")],
            output_dir: path("/out"),
            num_reducers: reducers,
            output_mode: mode,
            user: workloads::datajoin::user_fns(),
            ghost: Some(workloads::datajoin::fig6_profile()),
            shuffle: ShuffleTuning::default(),
        };
        let result = mr2.submit(job).wait(p);
        mr2.shutdown();
        result
    });
    fx.run();
    let result = driver.take().unwrap();
    assert_eq!(result.maps, 10, "fixed input must make 10 map tasks");
    let (shuffle_segments, shuffle_transfers) = mr.registry().fetch_counts();
    Fig6Point {
        secs: result.elapsed_secs(),
        output_files: result.output_files,
        shuffle_bytes: result.shuffle_bytes,
        shuffle_segments,
        shuffle_transfers,
    }
}

/// Shuffle-batching stress point: a data-join-profile job whose map count
/// far exceeds the node count, the regime where Hadoop's per-segment pulls
/// hurt most ("Only Aggressive Elephants are Fast Elephants"). Returns the
/// measured (maps, segments pulled, wire transfers, completion seconds) so
/// the fig6 driver can report how far the tier-2 combine collapsed the
/// per-task segment population (maps x reducers naive pulls down to at most
/// nodes x reducers combined segments).
pub fn fig6_shuffle_stress(
    nodes: u32,
    maps: u32,
    reducers: u32,
    seed: u64,
) -> (u32, u64, u64, f64) {
    const BLOCK: u64 = 1024 * 1024; // 1 MB blocks -> one map per MB of input
    let fx = Fabric::sim_seeded(ClusterSpec::tiny(nodes), seed);
    let fs: Arc<dyn FileSystem> = Arc::new(
        Bsfs::deploy(
            &fx,
            BlobSeerConfig::test_small(BLOCK),
            Layout::compact(fx.spec()),
        )
        .expect("bsfs"),
    );
    let mr = MrCluster::start(&fx, fs.clone(), MrConfig::compact(fx.spec()));
    let fs2 = fs.clone();
    let mr2 = mr.clone();
    let driver = fx.spawn(NodeId(0), "driver", move |p| {
        let mut w = fs2.create(p, &path("/in")).unwrap();
        w.write(p, Payload::ghost(u64::from(maps) * BLOCK)).unwrap();
        w.close(p).unwrap();
        let job = JobConf {
            name: "datajoin-shuffle-stress".into(),
            inputs: vec![path("/in")],
            output_dir: path("/out"),
            num_reducers: reducers,
            output_mode: OutputMode::SharedAppendFile,
            user: workloads::datajoin::user_fns(),
            ghost: Some(mapreduce::GhostProfile {
                input_record_bytes: 32,
                map_output_ratio: 1.0,
                map_cpu_per_byte: 10.0, // shuffle-dominated on purpose
                reduce_output_ratio: 1.0,
                reduce_cpu_per_byte: 2.0,
                combine_output_ratio: 1.0, // inert: datajoin has no combiner
            }),
            shuffle: ShuffleTuning::default(),
        };
        let result = mr2.submit(job).wait(p);
        mr2.shutdown();
        result
    });
    fx.run();
    let result = driver.take().unwrap();
    assert_eq!(result.maps, maps, "block count must fix the map count");
    let (segments, transfers) = mr.registry().fetch_counts();
    (result.maps, segments, transfers, result.elapsed_secs())
}

/// Which workload profile a combiner-ablation point runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineWorkload {
    /// Wordcount profile: has a combiner, heavy cross-task key repetition —
    /// the tier-2 combine's best case.
    Wordcount,
    /// Datajoin profile: no combiner (unique composite keys) — tier-2 only
    /// groups segments per node, bytes stay put.
    Datajoin,
}

impl CombineWorkload {
    pub fn label(&self) -> &'static str {
        match self {
            CombineWorkload::Wordcount => "wordcount",
            CombineWorkload::Datajoin => "datajoin",
        }
    }
}

/// One combiner-ablation measurement (fig6_combiners baseline currencies).
#[derive(Debug, Clone, Copy)]
pub struct CombinePoint {
    /// Bytes reducers actually pulled over the wire.
    pub shuffle_bytes: u64,
    /// Bytes the tier-2 combine removed before publication.
    pub combine_saved_bytes: u64,
    /// Combined (node, partition) segments published.
    pub combined_segments: u64,
    /// Reducer fetches issued before the map phase completed.
    pub early_shuffle_fetches: u64,
    /// Virtual job completion seconds.
    pub secs: f64,
    /// Segments reducers pulled and host-grouped transfers that carried them.
    pub shuffle_segments: u64,
    pub shuffle_transfers: u64,
}

/// Combiner-ablation point at the fig6 stress shape: `maps` 1 MB-block map
/// tasks over `nodes` nodes (maps ≫ nodes), `reducers` reducers, ghost
/// payloads with the named workload's calibrated profile, under the given
/// [`ShuffleTuning`]. The fig6_combiners bench sweeps the tuning axis and
/// records bytes shuffled + job seconds for both workloads.
pub fn fig6_combiners_point(
    workload: CombineWorkload,
    nodes: u32,
    maps: u32,
    reducers: u32,
    shuffle: ShuffleTuning,
    seed: u64,
) -> CombinePoint {
    const BLOCK: u64 = 1024 * 1024;
    let fx = Fabric::sim_seeded(ClusterSpec::tiny(nodes), seed);
    let fs: Arc<dyn FileSystem> = Arc::new(
        Bsfs::deploy(
            &fx,
            BlobSeerConfig::test_small(BLOCK),
            Layout::compact(fx.spec()),
        )
        .expect("bsfs"),
    );
    let mr = MrCluster::start(&fx, fs.clone(), MrConfig::compact(fx.spec()));
    let fs2 = fs.clone();
    let mr2 = mr.clone();
    let (user, ghost) = match workload {
        CombineWorkload::Wordcount => (
            workloads::wordcount::user_fns(),
            workloads::wordcount::ghost_profile(),
        ),
        CombineWorkload::Datajoin => (
            workloads::datajoin::user_fns(),
            workloads::datajoin::fig6_profile(),
        ),
    };
    let driver = fx.spawn(NodeId(0), "driver", move |p| {
        let mut w = fs2.create(p, &path("/in")).unwrap();
        w.write(p, Payload::ghost(u64::from(maps) * BLOCK)).unwrap();
        w.close(p).unwrap();
        let job = JobConf {
            name: format!("fig6-combiners-{}", workload.label()),
            inputs: vec![path("/in")],
            output_dir: path("/out"),
            num_reducers: reducers,
            output_mode: OutputMode::SharedAppendFile,
            user,
            ghost: Some(ghost),
            shuffle,
        };
        let result = mr2.submit(job).wait(p);
        mr2.shutdown();
        result
    });
    fx.run();
    let result = driver.take().unwrap();
    assert_eq!(result.maps, maps, "block count must fix the map count");
    let (shuffle_segments, shuffle_transfers) = mr.registry().fetch_counts();
    CombinePoint {
        shuffle_bytes: result.shuffle_bytes,
        combine_saved_bytes: result.combine_saved_bytes,
        combined_segments: result.combined_segments,
        early_shuffle_fetches: result.early_shuffle_fetches,
        secs: result.elapsed_secs(),
        shuffle_segments,
        shuffle_transfers,
    }
}

/// Extract the first numeric value following `"key":` in one of the flat
/// JSON files the bench drivers emit. No JSON dependency exists offline;
/// the files are our own fixed format, so a scan is sufficient (and any
/// drift fails loudly as a missing baseline field).
pub fn json_num(s: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = s.find(&pat)? + pat.len();
    let rest = s[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Companion of [`json_num`] for series-shaped baseline fields: the numeric
/// array following `"key":` in one of the flat JSON files the bench drivers
/// emit. Panics when the key or its array is missing — a malformed baseline
/// must fail the diff loudly, not pass it vacuously.
pub fn json_series(s: &str, key: &str) -> Vec<f64> {
    let at = s
        .find(&format!("\"{key}\""))
        .unwrap_or_else(|| panic!("baseline lacks {key}"));
    let seg = &s[at..];
    let seg = &seg[..seg.find(']').expect("series closes")];
    seg.split('[')
        .nth(1)
        .expect("series opens")
        .split(',')
        .filter_map(|v| v.trim().parse().ok())
        .collect()
}

/// Shape check helper: max relative spread of a series (0 = perfectly flat).
pub fn relative_spread(values: &[f64]) -> f64 {
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    if max <= 0.0 {
        0.0
    } else {
        (max - min) / max
    }
}
