//! BSFS end-to-end tests: the dfs contract, plus the behaviours specific to
//! the paper — concurrent appends to a shared file and reader/appender
//! isolation through versioning.

use std::sync::Arc;

use blobseer::{BlobSeerConfig, Layout};
use bsfs::Bsfs;
use dfs::{DfsPath, FileSystem};
use fabric::{ClusterSpec, Fabric, NodeId, Payload, Proc};

fn d(s: &str) -> DfsPath {
    DfsPath::new(s).unwrap()
}

fn deploy_sim(nodes: u32, block: u64) -> (Fabric, Bsfs) {
    let fx = Fabric::sim(ClusterSpec::tiny(nodes));
    let fs = Bsfs::deploy(
        &fx,
        BlobSeerConfig::test_small(block),
        Layout::compact(fx.spec()),
    )
    .unwrap();
    (fx, fs)
}

fn pattern(len: usize, tag: u8) -> Vec<u8> {
    (0..len)
        .map(|i| tag.wrapping_add((i % 249) as u8))
        .collect()
}

#[test]
fn satisfies_the_filesystem_contract() {
    let (fx, fs) = deploy_sim(6, 4096);
    let h = fx.spawn(NodeId(0), "contract", move |p| {
        dfs::contract::exercise_filesystem(&fs, p);
    });
    fx.run();
    h.take().unwrap();
}

#[test]
fn satisfies_the_contract_in_live_mode() {
    let fx = Fabric::live(ClusterSpec::tiny(4));
    let fs = Bsfs::deploy(
        &fx,
        BlobSeerConfig::test_small(4096),
        Layout::compact(fx.spec()),
    )
    .unwrap();
    let h = fx.spawn(NodeId(0), "contract", move |p| {
        dfs::contract::exercise_filesystem(&fs, p);
    });
    fx.run();
    h.take().unwrap();
}

#[test]
fn write_behind_buffers_until_block_boundary() {
    let (fx, fs) = deploy_sim(4, 1000);
    let h = fx.spawn(NodeId(0), "writer", move |p| {
        let mut w = fs.create(p, &d("/buffered")).unwrap();
        // 600 bytes: below the block size, nothing committed yet.
        w.write(p, Payload::from_vec(pattern(600, 1))).unwrap();
        assert_eq!(fs.status(p, &d("/buffered")).unwrap().len, 0);
        // 600 more: one full block flushes (1000), 200 stay buffered.
        w.write(p, Payload::from_vec(pattern(600, 2))).unwrap();
        assert_eq!(fs.status(p, &d("/buffered")).unwrap().len, 1000);
        // Close flushes the 200-byte tail.
        w.close(p).unwrap();
        assert_eq!(fs.status(p, &d("/buffered")).unwrap().len, 1200);
        let mut want = pattern(600, 1);
        want.extend_from_slice(&pattern(600, 2));
        let got = fs.read_file(p, &d("/buffered")).unwrap();
        assert_eq!(got.bytes().as_ref(), &want[..]);
    });
    fx.run();
    h.take().unwrap();
}

#[test]
fn concurrent_appenders_to_one_shared_file() {
    // The paper's headline scenario: N clients appending whole blocks to the
    // same file; all blocks land atomically.
    let (fx, fs) = deploy_sim(10, 512);
    let fs_setup = fs.clone();
    let ready = fx.gate();
    let r2 = ready.clone();
    fx.spawn(NodeId(0), "setup", move |p| {
        let mut w = fs_setup.create(p, &d("/shared")).unwrap();
        w.close(p).unwrap();
        r2.set();
    });
    let n = 6usize;
    let block = 512usize;
    let per_appender = 4usize; // blocks each
    for i in 0..n {
        let fs2 = fs.clone();
        let ready2 = ready.clone();
        fx.spawn(NodeId(1 + i as u32), format!("appender{i}"), move |p| {
            ready2.wait(p);
            let mut w = fs2.append(p, &d("/shared")).unwrap();
            for b in 0..per_appender {
                w.write(
                    p,
                    Payload::from_vec(pattern(block, (i * per_appender + b) as u8 + 1)),
                )
                .unwrap();
            }
            w.close(p).unwrap();
        });
    }
    let fs3 = fs.clone();
    let result = Arc::new(parking_lot::Mutex::new(None));
    let res2 = result.clone();
    let fxc = fx.clone();
    let ready_v = ready.clone();
    fx.spawn(NodeId(9), "verifier", move |p: &Proc| {
        ready_v.wait(p);
        // Wait for all appenders (crude: poll the size).
        let want = (n * per_appender * block) as u64;
        loop {
            if fs3.status(p, &d("/shared")).unwrap().len == want {
                break;
            }
            p.sleep(10 * fabric::MILLIS);
        }
        let got = fs3.read_file(p, &d("/shared")).unwrap();
        let bytes = got.bytes().clone();
        // Every 512-byte block is intact (atomic appends).
        let mut seen = std::collections::HashSet::new();
        for chunk in bytes.chunks(block) {
            let tag = chunk[0];
            assert_eq!(
                chunk,
                &pattern(block, tag)[..],
                "block with tag {tag} corrupted"
            );
            assert!(seen.insert(tag), "tag {tag} duplicated");
        }
        assert_eq!(seen.len(), n * per_appender);
        *res2.lock() = Some(seen.len());
        let _ = &fxc;
    });
    fx.run();
    assert_eq!(result.lock().unwrap(), n * per_appender);
}

#[test]
fn readers_see_open_time_snapshot_while_appends_continue() {
    let (fx, fs) = deploy_sim(6, 256);
    let h = fx.spawn(NodeId(0), "driver", move |p| {
        let base = pattern(1024, 5);
        fs.write_file(p, &d("/log"), Payload::from_vec(base.clone()))
            .unwrap();
        let mut reader = fs.open(p, &d("/log")).unwrap();
        assert_eq!(reader.len(), 1024);
        // Concurrent appends (same proc for determinism; versioning is what
        // isolates, not scheduling).
        let mut w = fs.append(p, &d("/log")).unwrap();
        w.write(p, Payload::from_vec(pattern(512, 9))).unwrap();
        w.close(p).unwrap();
        // The pinned reader still sees exactly the old bytes.
        assert_eq!(reader.len(), 1024);
        let got = reader.read_at(p, 0, 1024).unwrap();
        assert_eq!(got.bytes().as_ref(), &base[..]);
        // A fresh open sees the appended data.
        let mut r2 = fs.open(p, &d("/log")).unwrap();
        assert_eq!(r2.len(), 1536);
        let tail = r2.read_at(p, 1024, 512).unwrap();
        assert_eq!(tail.bytes().as_ref(), &pattern(512, 9)[..]);
    });
    fx.run();
    h.take().unwrap();
}

#[test]
fn block_locations_enable_locality() {
    let (fx, fs) = deploy_sim(8, 512);
    let h = fx.spawn(NodeId(0), "driver", move |p| {
        fs.write_file(p, &d("/data"), Payload::from_vec(pattern(2048, 3)))
            .unwrap();
        let locs = fs.block_locations(p, &d("/data"), 0, 2048).unwrap();
        assert_eq!(locs.len(), 4);
        for (i, l) in locs.iter().enumerate() {
            assert_eq!(l.offset, i as u64 * 512);
            assert_eq!(l.len, 512);
            assert_eq!(l.hosts.len(), 1); // replication = 1
        }
        // Locations must point at actual providers.
        let provider_nodes: std::collections::HashSet<_> =
            fs.store().providers().iter().map(|pr| pr.node()).collect();
        for l in &locs {
            assert!(provider_nodes.contains(&l.hosts[0]));
        }
    });
    fx.run();
    h.take().unwrap();
}

#[test]
fn prefetch_serves_small_reads_from_cache() {
    let (fx, fs) = deploy_sim(4, 4096);
    let h = fx.spawn(NodeId(0), "driver", move |p| {
        // One block of data; many small sequential reads (the paper: Hadoop
        // reads ~4 KB records) must hit the metadata DHT only once.
        fs.write_file(p, &d("/records"), Payload::from_vec(pattern(4096, 8)))
            .unwrap();
        let gets_before: u64 = fs
            .store()
            .metadata_dht()
            .servers()
            .iter()
            .map(|s| s.op_counts().1)
            .sum();
        let mut r = fs.open(p, &d("/records")).unwrap();
        let mut assembled = Vec::new();
        loop {
            let chunk = r.read(p, 128).unwrap();
            if chunk.is_empty() {
                break;
            }
            assembled.extend_from_slice(chunk.bytes());
        }
        assert_eq!(assembled, pattern(4096, 8));
        let gets_after: u64 = fs
            .store()
            .metadata_dht()
            .servers()
            .iter()
            .map(|s| s.op_counts().1)
            .sum();
        let tree_gets = gets_after - gets_before;
        assert!(
            tree_gets <= 3,
            "expected one cached block fetch (few tree gets), saw {tree_gets}"
        );
    });
    fx.run();
    h.take().unwrap();
}

/// The namespace → blob mapping under *real* parallelism: in live mode
/// (genuine OS threads, no one-proc-at-a-time scheduler) a horde of writers
/// concurrently creates disjoint files and appends to them through the
/// sharded version-manager control plane. Every file must map to its own
/// BLOB, hold exactly its own bytes, and the shared-file appenders must
/// still interleave at whole-append granularity.
#[test]
fn parallel_writers_disjoint_files_live_mode() {
    const WRITERS: u32 = 12;
    const APPENDS: usize = 6;
    let fx = Fabric::live(ClusterSpec::tiny(4));
    let fs = Bsfs::deploy(
        &fx,
        BlobSeerConfig::test_small(256),
        Layout::compact(fx.spec()),
    )
    .unwrap();
    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let fs2 = fs.clone();
        handles.push(fx.spawn(
            NodeId(w % 4),
            format!("writer{w}"),
            move |p: &Proc| -> (DfsPath, Vec<u8>) {
                let path = d(&format!("/par/file-{w}"));
                let mut want = Vec::new();
                {
                    let mut wtr = fs2.create(p, &path).unwrap();
                    wtr.close(p).unwrap();
                }
                for a in 0..APPENDS {
                    let chunk = pattern(100 + w as usize + a, w as u8);
                    want.extend_from_slice(&chunk);
                    fs2.append_all(p, &path, Payload::from_vec(chunk)).unwrap();
                }
                (path, want)
            },
        ));
    }
    fx.run();
    let results: Vec<(DfsPath, Vec<u8>)> = handles.iter().map(|h| h.take().unwrap()).collect();
    // Live worlds accept post-run spawns: verify from a fresh process after
    // every writer has finished.
    let fs2 = fs.clone();
    let h = fx.spawn(NodeId(0), "verify", move |p: &Proc| {
        let mut blobs = std::collections::HashSet::new();
        for (path, want) in &results {
            // Each file maps to a distinct BLOB...
            assert!(
                blobs.insert(fs2.blob_of(p, path).unwrap()),
                "two files share a BLOB"
            );
            // ...whose published content is exactly what its writer sent.
            let status = fs2.status(p, path).unwrap();
            assert_eq!(status.len, want.len() as u64, "length of {path}");
            let mut r = fs2.open(p, path).unwrap();
            let got = r.read_at(p, 0, want.len() as u64).unwrap();
            assert_eq!(got.bytes(), &want[..], "content of {path}");
        }
        results.len()
    });
    fx.run();
    assert_eq!(h.take().unwrap(), WRITERS as usize);
}

/// Concurrent appenders to one shared file *and* private files at once, in
/// live mode: per-BLOB ordering (dense versions on the shared file) must
/// hold while disjoint files proceed independently on their own locks.
#[test]
fn parallel_shared_and_private_appends_live_mode() {
    const WRITERS: u32 = 8;
    let fx = Fabric::live(ClusterSpec::tiny(4));
    let fs = Bsfs::deploy(
        &fx,
        BlobSeerConfig::test_small(256),
        Layout::compact(fx.spec()),
    )
    .unwrap();
    {
        let fs2 = fs.clone();
        fx.spawn(NodeId(0), "setup", move |p: &Proc| {
            let mut w = fs2.create(p, &d("/shared")).unwrap();
            w.close(p).unwrap();
        });
    }
    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let fs2 = fs.clone();
        handles.push(fx.spawn(NodeId(w % 4), format!("w{w}"), move |p: &Proc| {
            // Live mode has no start barrier; create() on the shared path
            // may race setup, so retry, bounded by elapsed time (an
            // iteration bound would flake when a loaded machine deschedules
            // the setup thread).
            let t0 = p.now();
            while fs2.status(p, &d("/shared")).is_err() {
                assert!(
                    p.now() - t0 < 10 * fabric::SECS,
                    "setup never created /shared"
                );
                p.sleep(fabric::MILLIS);
            }
            let private = d(&format!("/private-{w}"));
            let mut wtr = fs2.create(p, &private).unwrap();
            wtr.close(p).unwrap();
            fs2.append_all(p, &d("/shared"), Payload::from_vec(pattern(256, w as u8)))
                .unwrap();
            fs2.append_all(p, &private, Payload::from_vec(pattern(64, w as u8)))
                .unwrap();
        }));
    }
    fx.run();
    for h in &handles {
        h.take().unwrap();
    }
    let fs2 = fs.clone();
    let h = fx.spawn(NodeId(0), "verify", move |p: &Proc| {
        let shared_blob = fs2.blob_of(p, &d("/shared")).unwrap();
        let latest = fs2.store().client().latest(p, shared_blob).unwrap();
        assert_eq!(latest, WRITERS as u64, "shared-file versions are dense");
        assert_eq!(
            fs2.status(p, &d("/shared")).unwrap().len,
            WRITERS as u64 * 256
        );
        for w in 0..WRITERS {
            assert_eq!(fs2.status(p, &d(&format!("/private-{w}"))).unwrap().len, 64);
        }
    });
    fx.run();
    h.take().unwrap();
}

/// Epoch-based registry GC end to end through the namespace: a deleted
/// file's BLOB is unreachable the moment `delete` returns, its registry
/// slot survives exactly one GC epoch (so in-flight holders of the slot
/// `Arc` run out harmlessly), and live files are never disturbed — closing
/// the ROADMAP's registry-growth item without touching the lock-free read
/// path.
#[test]
fn deleted_files_retire_their_blob_slots_in_epochs() {
    let (fx, fs) = deploy_sim(4, 4096);
    let fs2 = fs.clone();
    let driver = fx.spawn(NodeId(1), "driver", move |p| {
        let vm = fs2.store().version_manager().clone();
        for name in ["/gc/a", "/gc/b", "/gc/c"] {
            let mut w = fs2.create(p, &d(name)).unwrap();
            w.write(p, Payload::from_vec(pattern(100, 3))).unwrap();
            w.close(p).unwrap();
        }
        assert_eq!(vm.registry_len(), 3);
        let doomed = fs2.blob_of(p, &d("/gc/b")).unwrap();
        assert!(fs2.delete(p, &d("/gc/b"), false).unwrap());
        // The BLOB is unreachable immediately...
        assert!(matches!(
            fs2.store().client().latest(p, doomed),
            Err(blobseer::BlobError::NoSuchBlob(_))
        ));
        // ...but its slot waits out one epoch before the sweep drops it.
        assert_eq!(vm.registry_len(), 3);
        assert_eq!(vm.gc_registry(), 0);
        assert_eq!(vm.gc_registry(), 1);
        assert_eq!(vm.registry_len(), 2);
        // Recreating the path binds a fresh BLOB; the survivors are intact.
        let mut w = fs2.create(p, &d("/gc/b")).unwrap();
        w.close(p).unwrap();
        assert_ne!(fs2.blob_of(p, &d("/gc/b")).unwrap(), doomed);
        let mut r = fs2.open(p, &d("/gc/a")).unwrap();
        assert_eq!(r.read_at(p, 0, 100).unwrap().bytes(), &pattern(100, 3)[..]);
        // A recursive directory delete retires every file inside at once.
        assert!(fs2.delete(p, &d("/gc"), true).unwrap());
        vm.gc_registry();
        assert_eq!(vm.gc_registry(), 3);
        assert_eq!(vm.registry_len(), 0);
    });
    fx.run();
    driver.take().unwrap();
}

/// Live-mode (real OS threads) storage-plane variant: concurrent writers
/// drive the striped provider page maps and sharded metadata stripes in
/// genuine parallelism while the background reaper reclaims a dead
/// allocator's lease on the wall clock. Content, capacity books and the
/// lease table all come out exact.
#[test]
fn live_mode_writers_and_reaper_reclaim_storage_plane() {
    const WRITERS: u32 = 8;
    const APPENDS: usize = 4;
    // Generous wall-clock lease: a healthy writer thread must be able to
    // finish allocate→store→settle well inside it even on a loaded CI
    // runner, so only the deliberate corpse's lease ever expires.
    let timeout = 500 * fabric::MILLIS;
    let fx = Fabric::live(ClusterSpec::tiny(4));
    let mut cfg = BlobSeerConfig::test_small(256);
    cfg.timeouts.write_timeout_ns = Some(timeout);
    cfg.timeouts.reaper_interval_ns = 25 * fabric::MILLIS;
    let fs = Bsfs::deploy(&fx, cfg, Layout::compact(fx.spec())).unwrap();
    let reaper = fs.start_reaper(&fx);
    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let fs2 = fs.clone();
        handles.push(
            fx.spawn(NodeId(w % 4), format!("writer{w}"), move |p: &Proc| {
                let path = d(&format!("/live/f{w}"));
                {
                    let mut wtr = fs2.create(p, &path).unwrap();
                    wtr.close(p).unwrap();
                }
                let mut total = 0u64;
                for a in 0..APPENDS {
                    let n = 100 + (w as usize * APPENDS + a);
                    total += n as u64;
                    fs2.append_all(p, &path, Payload::from_vec(vec![w as u8; n]))
                        .unwrap();
                }
                (path, total)
            }),
        );
    }
    // A corpse that dies pre-page-store, concurrently with the writers.
    let fs_corpse = fs.clone();
    let corpse = fx.spawn(NodeId(0), "corpse", move |p: &Proc| {
        let pm = fs_corpse.store().provider_manager().clone();
        pm.allocate(p, &[(blobseer::PageId(0xDEAD, 0), 512)], 1, &[])
            .unwrap();
    });
    let fs_check = fs.clone();
    let driver = fx.spawn(NodeId(0), "driver", move |p: &Proc| {
        let results: Vec<(DfsPath, u64)> = handles.iter().map(|h| h.join(p)).collect();
        corpse.join(p);
        for (path, total) in &results {
            assert_eq!(fs_check.status(p, path).unwrap().len, *total);
        }
        // Give the reaper a few wall-clock ticks past the lease deadline.
        p.sleep(2 * timeout);
        let pm = fs_check.store().provider_manager();
        assert_eq!(pm.outstanding_leases(), 0, "all leases settled or reaped");
        // At least the corpse's lease expired and returned its 512 B. A
        // writer thread descheduled past the (generous) deadline would add
        // to these counters, so the bounds are >= rather than == — the
        // token semantics of release keep the books exact either way.
        let (expired, reclaimed) = pm.lease_reap_stats();
        assert!(expired >= 1, "the corpse's lease must have expired");
        assert!(reclaimed >= 512, "the corpse's 512 B must have returned");
        for pr in fs_check.store().providers() {
            assert_eq!(
                pr.load_estimate(),
                pr.stored_bytes(),
                "live-mode books must balance after the reap"
            );
        }
        reaper.stop();
        results.len()
    });
    fx.run();
    assert_eq!(driver.take().unwrap(), WRITERS as usize);
}
