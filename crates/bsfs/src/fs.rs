//! `Bsfs`: the [`dfs::FileSystem`] implementation over BlobSeer.

use std::sync::Arc;

use blobseer::{BlobSeer, BlobSeerConfig, Layout, ReaperHandle};
use dfs::{
    BlockLocation, DfsPath, FileReader, FileStatus, FileSystem, FileWriter, FsError, FsResult,
};
use fabric::{Fabric, NodeId, Payload, Proc};

use crate::file::{to_fs_err, BsfsReader, BsfsWriter};
use crate::namespace::{NamespaceManager, NsEntry};

/// The BlobSeer File System (paper §3.2): a namespace manager mapping files
/// to BLOBs plus client-side block caching, exposing the Hadoop
/// `FileSystem` surface *including* `append`.
#[derive(Clone)]
pub struct Bsfs {
    ns: Arc<NamespaceManager>,
    client: Arc<blobseer::BlobClient>,
    store: BlobSeer,
}

impl Bsfs {
    /// Wrap an already-deployed BlobSeer store; the namespace manager is
    /// hosted on `ns_node` (the paper gives it a dedicated node, §4.1).
    pub fn new(store: BlobSeer, ns_node: NodeId) -> Bsfs {
        let cfg = store.config();
        let ns = Arc::new(NamespaceManager::new(
            ns_node,
            cfg.ctl_msg_bytes,
            cfg.vm_cpu_ops,
        ));
        let client = Arc::new(store.client());
        Bsfs { ns, client, store }
    }

    /// Deploy BlobSeer + BSFS in one call.
    pub fn deploy(fabric: &Fabric, config: BlobSeerConfig, layout: Layout) -> FsResult<Bsfs> {
        let ns_node = layout.namespace;
        let store = BlobSeer::deploy(fabric, config, layout)
            .map_err(|e| FsError::Storage(e.to_string()))?;
        Ok(Bsfs::new(store, ns_node))
    }

    /// Deploy with the paper's 270-node layout.
    pub fn deploy_paper(fabric: &Fabric, config: BlobSeerConfig) -> FsResult<Bsfs> {
        let layout = Layout::paper(fabric.spec());
        Self::deploy(fabric, config, layout)
    }

    pub fn namespace(&self) -> &Arc<NamespaceManager> {
        &self.ns
    }

    pub fn store(&self) -> &BlobSeer {
        &self.store
    }

    /// Start the store's background reaper (expired pending writes, expired
    /// provider leases, registry GC epochs) as an opt-in service — see
    /// [`BlobSeer::start_reaper`]. Deployments that skip it keep the lazy
    /// piggybacked reaping.
    pub fn start_reaper(&self, fabric: &Fabric) -> ReaperHandle {
        self.store.start_reaper(fabric)
    }

    /// The BLOB backing `path` (tests/diagnostics).
    pub fn blob_of(&self, p: &Proc, path: &DfsPath) -> FsResult<blobseer::BlobId> {
        match self.ns.lookup(p, path)? {
            NsEntry::File { blob, .. } => Ok(blob),
            NsEntry::Dir => Err(FsError::IsADirectory(path.clone())),
        }
    }

    fn file_entry(&self, p: &Proc, path: &DfsPath) -> FsResult<(blobseer::BlobId, u64)> {
        match self.ns.lookup(p, path)? {
            NsEntry::File { blob, block_size } => Ok((blob, block_size)),
            NsEntry::Dir => Err(FsError::IsADirectory(path.clone())),
        }
    }
}

impl FileSystem for Bsfs {
    fn create(&self, p: &Proc, path: &DfsPath) -> FsResult<Box<dyn FileWriter>> {
        let block_size = self.default_block_size();
        // Namespace insertion first (it owns the AlreadyExists/NotADirectory
        // checks), then bind the fresh BLOB.
        let blob = self.client.create(p, Some(block_size));
        self.ns.create_file(p, path, blob, block_size)?;
        Ok(Box::new(BsfsWriter::new(
            self.client.clone(),
            blob,
            block_size,
        )))
    }

    fn append(&self, p: &Proc, path: &DfsPath) -> FsResult<Box<dyn FileWriter>> {
        let (blob, block_size) = self.file_entry(p, path)?;
        Ok(Box::new(BsfsWriter::new(
            self.client.clone(),
            blob,
            block_size,
        )))
    }

    fn open(&self, p: &Proc, path: &DfsPath) -> FsResult<Box<dyn FileReader>> {
        let (blob, _) = self.file_entry(p, path)?;
        let snap = self.client.snapshot(p, blob, None).map_err(to_fs_err)?;
        Ok(Box::new(BsfsReader::new(self.client.clone(), blob, snap)))
    }

    fn delete(&self, p: &Proc, path: &DfsPath, recursive: bool) -> FsResult<bool> {
        // Retire the backing BLOBs of every removed file: their registry
        // slots become unreachable immediately and are dropped by a later
        // epoch-based GC pass (run by the background reaper when enabled).
        // Versions of *live* files are still kept forever, as in the paper —
        // GC only ever follows a namespace delete.
        let (removed, blobs) = self.ns.delete(p, path, recursive)?;
        for blob in blobs {
            // A double delete (e.g. racing clients) is not an FS error.
            let _ = self.client.delete(p, blob);
        }
        Ok(removed)
    }

    fn rename(&self, p: &Proc, src: &DfsPath, dst: &DfsPath) -> FsResult<()> {
        self.ns.rename(p, src, dst)
    }

    fn mkdirs(&self, p: &Proc, path: &DfsPath) -> FsResult<()> {
        self.ns.mkdirs(p, path)
    }

    fn status(&self, p: &Proc, path: &DfsPath) -> FsResult<FileStatus> {
        match self.ns.lookup(p, path)? {
            NsEntry::Dir => Ok(FileStatus {
                path: path.clone(),
                len: 0,
                is_dir: true,
                block_size: self.default_block_size(),
            }),
            NsEntry::File { blob, block_size } => {
                // Size is authoritative at the version manager: length of the
                // latest *published* version.
                let len = self.client.size(p, blob, None).map_err(to_fs_err)?;
                Ok(FileStatus {
                    path: path.clone(),
                    len,
                    is_dir: false,
                    block_size,
                })
            }
        }
    }

    fn list(&self, p: &Proc, path: &DfsPath) -> FsResult<Vec<FileStatus>> {
        let entries = self.ns.list(p, path)?;
        let mut out = Vec::with_capacity(entries.len());
        for (child, entry) in entries {
            out.push(match entry {
                NsEntry::Dir => FileStatus {
                    path: child,
                    len: 0,
                    is_dir: true,
                    block_size: self.default_block_size(),
                },
                NsEntry::File { blob, block_size } => {
                    let len = self.client.size(p, blob, None).map_err(to_fs_err)?;
                    FileStatus {
                        path: child,
                        len,
                        is_dir: false,
                        block_size,
                    }
                }
            });
        }
        Ok(out)
    }

    fn block_locations(
        &self,
        p: &Proc,
        path: &DfsPath,
        offset: u64,
        len: u64,
    ) -> FsResult<Vec<BlockLocation>> {
        let (blob, _) = self.file_entry(p, path)?;
        let locs = self
            .client
            .page_locations(p, blob, None, offset, len)
            .map_err(to_fs_err)?;
        Ok(locs
            .into_iter()
            .map(|l| BlockLocation {
                offset: l.byte_off,
                len: l.byte_len,
                hosts: l.hosts,
            })
            .collect())
    }

    fn append_all(&self, p: &Proc, path: &DfsPath, data: Payload) -> FsResult<()> {
        // One BLOB append = one atomic version, regardless of size: exactly
        // what concurrent reduce committers need (paper Figure 2).
        if data.is_empty() {
            return Ok(());
        }
        let (blob, _) = self.file_entry(p, path)?;
        self.client.append(p, blob, data).map_err(to_fs_err)?;
        Ok(())
    }

    fn default_block_size(&self) -> u64 {
        self.store.config().page_size
    }

    fn supports_append(&self) -> bool {
        true
    }

    fn scheme(&self) -> &'static str {
        "bsfs"
    }
}
