//! BSFS file handles: the client-side caching layer of paper §3.2 —
//! "a caching mechanism ... prefetches a whole block when the requested
//! data is not already cached, and delays committing writes until a whole
//! block has been filled in the cache".

use std::sync::Arc;

use blobseer::{BlobClient, BlobId, SnapshotInfo};
use dfs::{FileReader, FileWriter, FsError, FsResult};
use fabric::{Payload, Proc};

pub(crate) fn to_fs_err(e: blobseer::BlobError) -> FsError {
    FsError::Storage(e.to_string())
}

/// Write-behind buffered writer: data accumulates client-side and is shipped
/// to BlobSeer as whole blocks (`block_size` = the BLOB's page size); the
/// final partial block flushes at close as a short tail page. Because every
/// flush is an atomic BLOB append, concurrent writers on the same file
/// interleave at block granularity and never corrupt each other.
pub struct BsfsWriter {
    client: Arc<BlobClient>,
    blob: BlobId,
    block_size: u64,
    pending: Vec<Payload>,
    pending_len: u64,
    written: u64,
    closed: bool,
}

impl BsfsWriter {
    pub(crate) fn new(client: Arc<BlobClient>, blob: BlobId, block_size: u64) -> Self {
        BsfsWriter {
            client,
            blob,
            block_size,
            pending: Vec::new(),
            pending_len: 0,
            written: 0,
            closed: false,
        }
    }

    /// Flush any buffered whole blocks; when `all` also flush the partial
    /// tail.
    fn flush_blocks(&mut self, p: &Proc, all: bool) -> FsResult<()> {
        let whole = (self.pending_len / self.block_size) * self.block_size;
        let flush_len = if all { self.pending_len } else { whole };
        if flush_len == 0 {
            return Ok(());
        }
        let buffered = Payload::concat(&self.pending);
        let head = buffered.slice(0, flush_len);
        let rest_len = self.pending_len - flush_len;
        self.pending.clear();
        if rest_len > 0 {
            self.pending.push(buffered.slice(flush_len, rest_len));
        }
        self.pending_len = rest_len;
        self.client.append(p, self.blob, head).map_err(to_fs_err)?;
        Ok(())
    }
}

impl FileWriter for BsfsWriter {
    fn write(&mut self, p: &Proc, data: Payload) -> FsResult<()> {
        if self.closed {
            return Err(FsError::HandleClosed);
        }
        if data.is_empty() {
            return Ok(());
        }
        self.written += data.len();
        self.pending_len += data.len();
        self.pending.push(data);
        if self.pending_len >= self.block_size {
            self.flush_blocks(p, false)?;
        }
        Ok(())
    }

    fn close(&mut self, p: &Proc) -> FsResult<()> {
        if self.closed {
            return Ok(());
        }
        self.flush_blocks(p, true)?;
        self.closed = true;
        Ok(())
    }

    fn written(&self) -> u64 {
        self.written
    }
}

/// Snapshot-pinned reader with whole-block prefetch. The snapshot is fixed
/// at open time: concurrent appenders produce new versions that this reader
/// deliberately does not see (reopen to observe growth) — the isolation
/// behind the paper's Figure 4.
pub struct BsfsReader {
    client: Arc<BlobClient>,
    blob: BlobId,
    snap: SnapshotInfo,
    block_size: u64,
    pos: u64,
    /// `(start_offset, data)` of the most recently fetched block window.
    cache: Option<(u64, Payload)>,
}

impl BsfsReader {
    pub(crate) fn new(client: Arc<BlobClient>, blob: BlobId, snap: SnapshotInfo) -> Self {
        let block_size = snap.page_size;
        BsfsReader {
            client,
            blob,
            snap,
            block_size,
            pos: 0,
            cache: None,
        }
    }

    /// The snapshot version this reader is pinned to.
    pub fn version(&self) -> blobseer::Version {
        self.snap.version
    }

    fn cached_range(&self) -> Option<(u64, u64)> {
        self.cache.as_ref().map(|(s, d)| (*s, *s + d.len()))
    }
}

impl FileReader for BsfsReader {
    fn read(&mut self, p: &Proc, len: u64) -> FsResult<Payload> {
        let total = self.snap.total_bytes;
        if self.pos >= total || len == 0 {
            return Ok(Payload::empty());
        }
        let in_cache = matches!(self.cached_range(), Some((s, e)) if self.pos >= s && self.pos < e);
        if !in_cache {
            // Prefetch the whole block-aligned window around `pos`.
            let start = self.pos - self.pos % self.block_size;
            let window = self.block_size.min(total - start);
            let data = self
                .client
                .read_snapshot(p, self.blob, &self.snap, start, window)
                .map_err(to_fs_err)?;
            self.cache = Some((start, data));
        }
        // analyze: allow(panic-unwrap): the branch above populated the cache
        let (s, data) = self.cache.as_ref().expect("just populated");
        let end_cached = s + data.len();
        let n = len.min(end_cached - self.pos).min(total - self.pos);
        let out = data.slice(self.pos - s, n);
        self.pos += n;
        Ok(out)
    }

    fn seek(&mut self, pos: u64) -> FsResult<()> {
        self.pos = pos;
        Ok(())
    }

    fn pos(&self) -> u64 {
        self.pos
    }

    fn len(&self) -> u64 {
        self.snap.total_bytes
    }
}
