//! The centralized BSFS namespace manager (paper §3.2: "this layer consists
//! in a centralized namespace manager, which is responsible for maintaining
//! a file system namespace, and for mapping files to BLOBs").
//!
//! The namespace holds directories and `file → BLOB` mappings only; file
//! *sizes* are authoritative at the version manager (the size of the latest
//! published version), which keeps concurrent appenders from racing on a
//! cached size field.

use std::collections::HashMap;

use dfs::{DfsPath, FsError, FsResult};
use fabric::{NodeId, Proc};
use parking_lot::Mutex;

use blobseer::BlobId;

/// One namespace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NsEntry {
    Dir,
    File { blob: BlobId, block_size: u64 },
}

impl NsEntry {
    pub fn is_dir(&self) -> bool {
        matches!(self, NsEntry::Dir)
    }
}

/// Centralized namespace service.
pub struct NamespaceManager {
    node: NodeId,
    ctl_msg_bytes: u64,
    cpu_ops: u64,
    state: Mutex<HashMap<DfsPath, NsEntry>>,
}

impl NamespaceManager {
    pub fn new(node: NodeId, ctl_msg_bytes: u64, cpu_ops: u64) -> Self {
        let mut map = HashMap::new();
        map.insert(DfsPath::root(), NsEntry::Dir);
        NamespaceManager {
            node,
            ctl_msg_bytes,
            cpu_ops,
            state: Mutex::new(map),
        }
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    fn charge(&self, p: &Proc) {
        p.rpc(self.node, self.ctl_msg_bytes, self.ctl_msg_bytes);
        if self.cpu_ops > 0 {
            p.compute(self.node, self.cpu_ops);
        }
    }

    /// Create all missing directories down to `path`.
    pub fn mkdirs(&self, p: &Proc, path: &DfsPath) -> FsResult<()> {
        self.charge(p);
        let mut st = self.state.lock();
        Self::mkdirs_locked(&mut st, path)
    }

    fn mkdirs_locked(st: &mut HashMap<DfsPath, NsEntry>, path: &DfsPath) -> FsResult<()> {
        // Walk from the root down, creating directories.
        let mut cur = DfsPath::root();
        for comp in path.components() {
            cur = cur.child(comp)?;
            match st.get(&cur) {
                None => {
                    st.insert(cur.clone(), NsEntry::Dir);
                }
                Some(NsEntry::Dir) => {}
                Some(NsEntry::File { .. }) => return Err(FsError::NotADirectory(cur)),
            }
        }
        Ok(())
    }

    /// Register a new file mapped to `blob`. Auto-creates parent directories
    /// (Hadoop `create` semantics).
    pub fn create_file(
        &self,
        p: &Proc,
        path: &DfsPath,
        blob: BlobId,
        block_size: u64,
    ) -> FsResult<()> {
        self.charge(p);
        if path.is_root() {
            return Err(FsError::IsADirectory(path.clone()));
        }
        let mut st = self.state.lock();
        if st.contains_key(path) {
            return Err(FsError::AlreadyExists(path.clone()));
        }
        if let Some(parent) = path.parent() {
            Self::mkdirs_locked(&mut st, &parent)?;
        }
        st.insert(path.clone(), NsEntry::File { blob, block_size });
        Ok(())
    }

    /// Look up an entry.
    pub fn lookup(&self, p: &Proc, path: &DfsPath) -> FsResult<NsEntry> {
        self.charge(p);
        self.state
            .lock()
            .get(path)
            .cloned()
            .ok_or_else(|| FsError::NotFound(path.clone()))
    }

    /// Children names + entries of a directory, sorted by name.
    pub fn list(&self, p: &Proc, path: &DfsPath) -> FsResult<Vec<(DfsPath, NsEntry)>> {
        self.charge(p);
        let st = self.state.lock();
        match st.get(path) {
            None => return Err(FsError::NotFound(path.clone())),
            Some(NsEntry::File { .. }) => return Err(FsError::NotADirectory(path.clone())),
            Some(NsEntry::Dir) => {}
        }
        let mut out: Vec<(DfsPath, NsEntry)> = st
            .iter()
            .filter(|(k, _)| !k.is_root() && k.parent().as_ref() == Some(path))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Atomic rename of a file or directory subtree. Fails when `dst`
    /// exists (Hadoop 0.20 semantics) or `src` is missing.
    pub fn rename(&self, p: &Proc, src: &DfsPath, dst: &DfsPath) -> FsResult<()> {
        self.charge(p);
        if src.is_root() {
            return Err(FsError::InvalidPath {
                path: src.to_string(),
                reason: "cannot rename the root".into(),
            });
        }
        if dst.starts_with(src) {
            return Err(FsError::InvalidPath {
                path: dst.to_string(),
                reason: "destination lies inside the source".into(),
            });
        }
        let mut st = self.state.lock();
        if !st.contains_key(src) {
            return Err(FsError::NotFound(src.clone()));
        }
        if st.contains_key(dst) {
            return Err(FsError::AlreadyExists(dst.clone()));
        }
        if let Some(parent) = dst.parent() {
            Self::mkdirs_locked(&mut st, &parent)?;
        }
        // Move src and (for directories) its whole subtree.
        let to_move: Vec<DfsPath> = st.keys().filter(|k| k.starts_with(src)).cloned().collect();
        for old in to_move {
            // analyze: allow(panic-unwrap): `to_move` lists distinct live keys
            let entry = st.remove(&old).expect("key just listed");
            // analyze: allow(panic-unwrap): `old` starts_with `src`, so rebase holds
            let new = old.rebase(src, dst).expect("subtree paths rebase");
            st.insert(new, entry);
        }
        Ok(())
    }

    /// Delete a file or directory. Non-empty directories require
    /// `recursive`. Returns the BLOBs of all deleted files (so callers
    /// could garbage-collect them) and whether anything was removed.
    pub fn delete(
        &self,
        p: &Proc,
        path: &DfsPath,
        recursive: bool,
    ) -> FsResult<(bool, Vec<BlobId>)> {
        self.charge(p);
        if path.is_root() {
            return Err(FsError::InvalidPath {
                path: path.to_string(),
                reason: "cannot delete the root".into(),
            });
        }
        let mut st = self.state.lock();
        let Some(entry) = st.get(path) else {
            return Ok((false, Vec::new()));
        };
        if entry.is_dir() {
            let children: Vec<DfsPath> = st
                .keys()
                .filter(|k| *k != path && k.starts_with(path))
                .cloned()
                .collect();
            if !children.is_empty() && !recursive {
                return Err(FsError::DirectoryNotEmpty(path.clone()));
            }
            let mut blobs = Vec::new();
            for k in children {
                if let Some(NsEntry::File { blob, .. }) = st.remove(&k) {
                    blobs.push(blob);
                }
            }
            st.remove(path);
            Ok((true, blobs))
        } else {
            let removed = st.remove(path);
            let blobs = match removed {
                Some(NsEntry::File { blob, .. }) => vec![blob],
                _ => Vec::new(),
            };
            Ok((true, blobs))
        }
    }

    /// Number of entries (diagnostics; includes directories and the root).
    pub fn entry_count(&self) -> usize {
        self.state.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::{ClusterSpec, Fabric};

    fn d(s: &str) -> DfsPath {
        DfsPath::new(s).unwrap()
    }

    fn with_proc<T: Send + 'static>(f: impl FnOnce(&Proc) -> T + Send + 'static) -> T {
        let fx = Fabric::sim(ClusterSpec::tiny(2));
        let h = fx.spawn(NodeId(0), "t", f);
        fx.run();
        h.take().unwrap()
    }

    #[test]
    fn create_auto_creates_parents() {
        with_proc(|p| {
            let ns = NamespaceManager::new(NodeId(1), 64, 0);
            ns.create_file(p, &d("/a/b/f"), BlobId(1), 100).unwrap();
            assert!(ns.lookup(p, &d("/a")).unwrap().is_dir());
            assert!(ns.lookup(p, &d("/a/b")).unwrap().is_dir());
            assert_eq!(
                ns.lookup(p, &d("/a/b/f")).unwrap(),
                NsEntry::File {
                    blob: BlobId(1),
                    block_size: 100
                }
            );
        });
    }

    #[test]
    fn file_as_directory_component_rejected() {
        with_proc(|p| {
            let ns = NamespaceManager::new(NodeId(1), 64, 0);
            ns.create_file(p, &d("/f"), BlobId(1), 100).unwrap();
            assert!(matches!(
                ns.create_file(p, &d("/f/child"), BlobId(2), 100),
                Err(FsError::NotADirectory(_))
            ));
            assert!(matches!(
                ns.mkdirs(p, &d("/f/sub")),
                Err(FsError::NotADirectory(_))
            ));
        });
    }

    #[test]
    fn rename_moves_subtrees() {
        with_proc(|p| {
            let ns = NamespaceManager::new(NodeId(1), 64, 0);
            ns.create_file(p, &d("/x/one"), BlobId(1), 100).unwrap();
            ns.create_file(p, &d("/x/deep/two"), BlobId(2), 100)
                .unwrap();
            ns.rename(p, &d("/x"), &d("/y")).unwrap();
            assert!(ns.lookup(p, &d("/y/one")).is_ok());
            assert!(ns.lookup(p, &d("/y/deep/two")).is_ok());
            assert!(ns.lookup(p, &d("/x")).is_err());
            // dst inside src is rejected
            assert!(ns.rename(p, &d("/y"), &d("/y/inner")).is_err());
        });
    }

    #[test]
    fn delete_returns_blobs_for_gc() {
        with_proc(|p| {
            let ns = NamespaceManager::new(NodeId(1), 64, 0);
            ns.create_file(p, &d("/dir/a"), BlobId(1), 100).unwrap();
            ns.create_file(p, &d("/dir/b"), BlobId(2), 100).unwrap();
            assert!(matches!(
                ns.delete(p, &d("/dir"), false),
                Err(FsError::DirectoryNotEmpty(_))
            ));
            let (removed, blobs) = ns.delete(p, &d("/dir"), true).unwrap();
            assert!(removed);
            let mut ids: Vec<u64> = blobs.iter().map(|b| b.0).collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![1, 2]);
            let (removed, _) = ns.delete(p, &d("/dir"), true).unwrap();
            assert!(!removed);
        });
    }

    #[test]
    fn list_is_sorted_and_shallow() {
        with_proc(|p| {
            let ns = NamespaceManager::new(NodeId(1), 64, 0);
            ns.create_file(p, &d("/dir/b"), BlobId(1), 100).unwrap();
            ns.create_file(p, &d("/dir/a"), BlobId(2), 100).unwrap();
            ns.create_file(p, &d("/dir/sub/deep"), BlobId(3), 100)
                .unwrap();
            let names: Vec<String> = ns
                .list(p, &d("/dir"))
                .unwrap()
                .iter()
                .map(|(k, _)| k.name().unwrap().to_string())
                .collect();
            assert_eq!(names, vec!["a", "b", "sub"]);
        });
    }
}
