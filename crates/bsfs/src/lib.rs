//! `bsfs` — the BlobSeer File System (paper §3.2).
//!
//! BSFS turns the [`blobseer`] BLOB store into a Hadoop-compatible file
//! system: a centralized *namespace manager* maps hierarchical file names to
//! BLOBs, client handles add the caching the paper describes (whole-block
//! prefetch on read, write-behind until a block fills), and — the point of
//! the paper — `append` **works**, including many concurrent appenders on
//! one shared file. Readers pin the snapshot current at `open` and are
//! never disturbed by in-flight appends.
//!
//! Use [`Bsfs::deploy`] (or [`Bsfs::deploy_paper`] for the 270-node layout
//! of §4.1) and program against [`dfs::FileSystem`].

mod file;
mod fs;
pub mod namespace;

pub use file::{BsfsReader, BsfsWriter};
pub use fs::Bsfs;
pub use namespace::{NamespaceManager, NsEntry};
