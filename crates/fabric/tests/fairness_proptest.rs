//! Property tests of the fluid-flow engine — the model every experiment's
//! timing rests on. For random sets of concurrent transfers we check the
//! defining properties of max-min fair sharing:
//!
//! 1. **Conservation**: each flow's measured duration implies a rate; the
//!    sum of implied rates through any resource never exceeds its capacity
//!    (within numerical tolerance).
//! 2. **No starvation**: every flow gets at least `capacity / k` where `k`
//!    is the maximum number of flows that ever share one of its resources.
//! 3. **Work accounting**: per-resource byte counters equal the bytes the
//!    transfers moved through them.
//! 4. **Determinism**: repeating the run with the same seed is identical.

use std::sync::Arc;

use fabric::{ClusterSpec, Fabric, NodeId};
use parking_lot::Mutex;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Xfer {
    src: u8,
    dst: u8,
    mb: u32,
    delay_ms: u16,
}

fn xfer_strategy(nodes: u8) -> impl Strategy<Value = Xfer> {
    (0..nodes, 0..nodes, 1u32..64, 0u16..50).prop_map(|(src, dst, mb, delay_ms)| Xfer {
        src,
        dst,
        mb,
        delay_ms,
    })
}

#[derive(Debug, Clone, Copy)]
struct Done {
    src: u32,
    dst: u32,
    bytes: u64,
    start_ns: u64,
    end_ns: u64,
}

fn run(xfers: &[Xfer], nodes: u8, seed: u64) -> (Vec<Done>, u64, u64) {
    let spec = ClusterSpec::tiny(nodes as u32);
    let fx = Fabric::sim_seeded(spec, seed);
    let results: Arc<Mutex<Vec<Done>>> = Arc::new(Mutex::new(Vec::new()));
    for (i, x) in xfers.iter().enumerate() {
        let x = x.clone();
        let r2 = results.clone();
        fx.spawn(NodeId(x.src as u32), format!("x{i}"), move |p| {
            p.sleep(x.delay_ms as u64 * fabric::MILLIS);
            let bytes = x.mb as u64 * 1_000_000;
            let start = p.now();
            p.transfer(NodeId(x.src as u32), NodeId(x.dst as u32), bytes);
            r2.lock().push(Done {
                src: x.src as u32,
                dst: x.dst as u32,
                bytes,
                start_ns: start,
                end_ns: p.now(),
            });
        });
    }
    fx.run();
    let stats = fx.stats();
    let out = results.lock().clone();
    (out, stats.events, stats.now_ns)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn max_min_fairness_invariants(
        xfers in prop::collection::vec(xfer_strategy(6), 1..24),
        seed in 0u64..1000,
    ) {
        let spec = ClusterSpec::tiny(6);
        let nic = spec.nic_bw;
        let loopback = spec.loopback_bw;
        let lat = spec.latency_ns;
        let (done, _, _) = run(&xfers, 6, seed);
        prop_assert_eq!(done.len(), xfers.len());

        for d in &done {
            let dur_ns = d.end_ns - d.start_ns;
            let cap = if d.src == d.dst { loopback } else { nic };
            let budget_ns = if d.src == d.dst { 0 } else { lat };
            // 1) A flow can never beat the capacity of its tightest link.
            let min_ns = budget_ns + (d.bytes as f64 / cap * 1e9) as u64;
            prop_assert!(
                dur_ns + 2_000 >= min_ns,
                "flow {}->{} of {} B finished impossibly fast: {} < {}",
                d.src, d.dst, d.bytes, dur_ns, min_ns
            );
            // 2) No starvation: worst case it shares its links with every
            // other transfer in the run.
            let k = xfers.len() as f64;
            let max_ns = budget_ns as f64 + (d.bytes as f64 / (cap / k) * 1e9) + 2e6;
            prop_assert!(
                (dur_ns as f64) <= max_ns,
                "flow {}->{} of {} B starved: {} > {}",
                d.src, d.dst, d.bytes, dur_ns, max_ns
            );
        }
    }

    #[test]
    fn per_resource_accounting_is_exact(
        xfers in prop::collection::vec(xfer_strategy(5), 1..16),
    ) {
        let spec = ClusterSpec::tiny(5);
        let fx = Fabric::sim(spec.clone());
        for (i, x) in xfers.iter().enumerate() {
            let x = x.clone();
            fx.spawn(NodeId(x.src as u32), format!("x{i}"), move |p| {
                p.sleep(x.delay_ms as u64 * fabric::MILLIS);
                p.transfer(
                    NodeId(x.src as u32),
                    NodeId(x.dst as u32),
                    x.mb as u64 * 1_000_000,
                );
            });
        }
        fx.run();
        let stats = fx.stats();
        // Expected per-TX totals (remote transfers above the small-message
        // cutoff create flows; all our sizes are >= 1 MB).
        for n in 0..5u32 {
            let want_tx: f64 = xfers
                .iter()
                .filter(|x| x.src as u32 == n && x.src != x.dst)
                .map(|x| x.mb as f64 * 1e6)
                .sum();
            let got_tx = stats.resource_total(
                &spec,
                NodeId(n),
                fabric::topology::ResourceKind::Tx,
            );
            prop_assert!(
                (got_tx - want_tx).abs() < 1.0 + want_tx * 1e-9,
                "node {n} TX accounted {got_tx}, expected {want_tx}"
            );
        }
    }

    #[test]
    fn simulation_is_deterministic_for_any_workload(
        xfers in prop::collection::vec(xfer_strategy(4), 1..12),
        seed in 0u64..50,
    ) {
        let a = run(&xfers, 4, seed);
        let b = run(&xfers, 4, seed);
        prop_assert_eq!(a.1, b.1, "event counts diverged");
        prop_assert_eq!(a.2, b.2, "final clocks diverged");
        let mut ea: Vec<(u32, u32, u64, u64)> =
            a.0.iter().map(|d| (d.src, d.dst, d.start_ns, d.end_ns)).collect();
        let mut eb: Vec<(u32, u32, u64, u64)> =
            b.0.iter().map(|d| (d.src, d.dst, d.start_ns, d.end_ns)).collect();
        ea.sort_unstable();
        eb.sort_unstable();
        prop_assert_eq!(ea, eb, "flow timelines diverged");
    }
}

/// Directed pair saturation: equal flows crossing one shared link split the
/// bandwidth equally (the textbook max-min case, checked exactly).
#[test]
fn equal_sharers_get_equal_rates() {
    for n_flows in [2usize, 3, 5, 8] {
        let spec = ClusterSpec::tiny(2);
        let fx = Fabric::sim(spec.clone());
        let results: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        for i in 0..n_flows {
            let r2 = results.clone();
            fx.spawn(NodeId(0), format!("f{i}"), move |p| {
                let t0 = p.now();
                p.send_to(NodeId(1), 50_000_000);
                r2.lock().push(p.now() - t0);
            });
        }
        fx.run();
        let times = results.lock();
        let expect = spec.latency_ns as f64 + 50_000_000.0 * n_flows as f64 / spec.nic_bw * 1e9;
        for &t in times.iter() {
            let err = (t as f64 - expect).abs() / expect;
            assert!(
                err < 0.001,
                "{n_flows} sharers: took {t}, expected ~{expect}"
            );
        }
    }
}
