//! Blocking primitives that integrate with both fabric modes.
//!
//! * [`Queue`] — an unbounded multi-producer/multi-consumer queue. Service
//!   inboxes, heartbeat channels and work queues are built from it.
//! * [`Gate`] — a one-shot broadcast flag ("this is done", "shut down now").
//!
//! In sim mode, blocking goes through the engine: the caller parks and is
//! woken by an event scheduled at the current virtual instant, preserving the
//! one-runnable-process-at-a-time discipline (and hence determinism). In
//! live mode these degrade to ordinary Mutex+Condvar implementations.
//!
//! Receiving/waiting requires a [`Proc`] context; sending, closing and
//! non-blocking probes can be done from anywhere (including the main thread
//! before the simulation starts).

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::handle::{Fabric, FabricInner, Proc};
use crate::sim::SimCore;

// ---------------------------------------------------------------------------
// Queue
// ---------------------------------------------------------------------------

struct SimQ<T> {
    buf: VecDeque<T>,
    waiters: VecDeque<(u64, u64)>,
    closed: bool,
}

struct LiveQ<T> {
    state: Mutex<(VecDeque<T>, bool)>,
    cv: Condvar,
}

enum QueueInner<T> {
    Sim {
        core: Arc<SimCore>,
        q: Arc<Mutex<SimQ<T>>>,
    },
    Live(Arc<LiveQ<T>>),
}

impl<T> Clone for QueueInner<T> {
    fn clone(&self) -> Self {
        match self {
            QueueInner::Sim { core, q } => QueueInner::Sim {
                core: core.clone(),
                q: q.clone(),
            },
            QueueInner::Live(l) => QueueInner::Live(l.clone()),
        }
    }
}

/// Unbounded MPMC queue usable from fabric processes.
pub struct Queue<T> {
    inner: QueueInner<T>,
}

impl<T> Clone for Queue<T> {
    fn clone(&self) -> Self {
        Queue {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Send + 'static> Queue<T> {
    pub(crate) fn new(fabric: &Fabric) -> Self {
        let inner = match &fabric.inner {
            FabricInner::Sim(core) => QueueInner::Sim {
                core: core.clone(),
                q: Arc::new(Mutex::new(SimQ {
                    buf: VecDeque::new(),
                    waiters: VecDeque::new(),
                    closed: false,
                })),
            },
            FabricInner::Live(_) => QueueInner::Live(Arc::new(LiveQ {
                state: Mutex::new((VecDeque::new(), false)),
                cv: Condvar::new(),
            })),
        };
        Queue { inner }
    }

    /// Enqueue an item. Returns `false` (dropping the item) if the queue has
    /// been closed.
    pub fn send(&self, item: T) -> bool {
        match &self.inner {
            QueueInner::Sim { core, q } => {
                let waiter = {
                    let mut q = q.lock();
                    if q.closed {
                        return false;
                    }
                    q.buf.push_back(item);
                    q.waiters.pop_front()
                };
                if let Some((pid, gen)) = waiter {
                    core.schedule_wake(pid, gen);
                }
                true
            }
            QueueInner::Live(l) => {
                let mut st = l.state.lock();
                if st.1 {
                    return false;
                }
                st.0.push_back(item);
                l.cv.notify_one();
                true
            }
        }
    }

    /// Blocking receive. Returns `None` once the queue is closed *and*
    /// drained.
    pub fn recv(&self, p: &Proc) -> Option<T> {
        match &self.inner {
            QueueInner::Sim { core, q } => loop {
                {
                    let mut qg = q.lock();
                    if let Some(x) = qg.buf.pop_front() {
                        return Some(x);
                    }
                    if qg.closed {
                        return None;
                    }
                    let gen = core.block_prepare(p.pid(), "queue.recv");
                    qg.waiters.push_back((p.pid(), gen));
                }
                p.park();
            },
            QueueInner::Live(l) => {
                let mut st = l.state.lock();
                loop {
                    if let Some(x) = st.0.pop_front() {
                        return Some(x);
                    }
                    if st.1 {
                        return None;
                    }
                    l.cv.wait(&mut st);
                }
            }
        }
    }

    /// Non-blocking receive (usable from any thread).
    pub fn try_recv(&self) -> Option<T> {
        match &self.inner {
            QueueInner::Sim { q, .. } => q.lock().buf.pop_front(),
            QueueInner::Live(l) => l.state.lock().0.pop_front(),
        }
    }

    /// Close the queue: pending items remain receivable; subsequent sends are
    /// rejected; blocked receivers wake and observe `None` after draining.
    pub fn close(&self) {
        match &self.inner {
            QueueInner::Sim { core, q } => {
                let waiters = {
                    let mut qg = q.lock();
                    qg.closed = true;
                    std::mem::take(&mut qg.waiters)
                };
                for (pid, gen) in waiters {
                    core.schedule_wake(pid, gen);
                }
            }
            QueueInner::Live(l) => {
                let mut st = l.state.lock();
                st.1 = true;
                l.cv.notify_all();
            }
        }
    }

    /// Number of currently buffered items.
    pub fn len(&self) -> usize {
        match &self.inner {
            QueueInner::Sim { q, .. } => q.lock().buf.len(),
            QueueInner::Live(l) => l.state.lock().0.len(),
        }
    }

    /// True when no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain all currently buffered items (non-blocking).
    pub fn drain(&self) -> Vec<T> {
        match &self.inner {
            QueueInner::Sim { q, .. } => q.lock().buf.drain(..).collect(),
            QueueInner::Live(l) => l.state.lock().0.drain(..).collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Gate
// ---------------------------------------------------------------------------

struct SimG {
    set: bool,
    waiters: Vec<(u64, u64)>,
}

struct LiveG {
    state: Mutex<bool>,
    cv: Condvar,
}

enum GateInner {
    Sim {
        core: Arc<SimCore>,
        g: Arc<Mutex<SimG>>,
    },
    Live(Arc<LiveG>),
}

impl Clone for GateInner {
    fn clone(&self) -> Self {
        match self {
            GateInner::Sim { core, g } => GateInner::Sim {
                core: core.clone(),
                g: g.clone(),
            },
            GateInner::Live(l) => GateInner::Live(l.clone()),
        }
    }
}

/// One-shot broadcast flag: `set` once, every past and future `wait` returns.
#[derive(Clone)]
pub struct Gate {
    inner: GateInner,
}

impl Gate {
    pub(crate) fn new(fabric: &Fabric) -> Self {
        let inner = match &fabric.inner {
            FabricInner::Sim(core) => GateInner::Sim {
                core: core.clone(),
                g: Arc::new(Mutex::new(SimG {
                    set: false,
                    waiters: Vec::new(),
                })),
            },
            FabricInner::Live(_) => GateInner::Live(Arc::new(LiveG {
                state: Mutex::new(false),
                cv: Condvar::new(),
            })),
        };
        Gate { inner }
    }

    /// Raise the flag and wake all waiters. Idempotent.
    pub fn set(&self) {
        match &self.inner {
            GateInner::Sim { core, g } => {
                let waiters = {
                    let mut gg = g.lock();
                    gg.set = true;
                    std::mem::take(&mut gg.waiters)
                };
                for (pid, gen) in waiters {
                    core.schedule_wake(pid, gen);
                }
            }
            GateInner::Live(l) => {
                *l.state.lock() = true;
                l.cv.notify_all();
            }
        }
    }

    /// True once [`Gate::set`] has been called.
    pub fn is_set(&self) -> bool {
        match &self.inner {
            GateInner::Sim { g, .. } => g.lock().set,
            GateInner::Live(l) => *l.state.lock(),
        }
    }

    /// Block until the gate is set (no-op when already set).
    pub fn wait(&self, p: &Proc) {
        match &self.inner {
            GateInner::Sim { core, g } => loop {
                {
                    let mut gg = g.lock();
                    if gg.set {
                        return;
                    }
                    let gen = core.block_prepare(p.pid(), "gate.wait");
                    gg.waiters.push((p.pid(), gen));
                }
                p.park();
            },
            GateInner::Live(l) => {
                let mut st = l.state.lock();
                while !*st {
                    l.cv.wait(&mut st);
                }
            }
        }
    }
}
