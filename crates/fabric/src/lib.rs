//! Execution substrate for the BlobSeer/Hadoop reproduction.
//!
//! The paper evaluates on 270 nodes of the Grid'5000 Orsay cluster. That
//! testbed is not available here, so this crate provides the substitute: a
//! *process-oriented discrete-event simulator* in the style of SimGrid.
//! Distributed-system code (version managers, providers, namenodes, job
//! trackers, clients, ...) is written as ordinary concurrent Rust against the
//! [`Proc`] API; the same code runs in two modes:
//!
//! * **Sim** ([`Fabric::sim`]): every node has TX/RX NIC, disk, CPU and
//!   loopback resources with configurable capacities. Data movement
//!   ([`Proc::transfer`]), disk I/O and computation become *fluid flows* that
//!   share resources max-min fairly; a virtual clock advances through an
//!   event queue. Exactly one simulated process executes at a time and all
//!   wakeups are routed through the event queue, so simulations are
//!   deterministic and cheap: hundreds of simulated nodes moving tens of
//!   simulated gigabytes run in seconds on a laptop.
//! * **Live** ([`Fabric::live`]): processes are real OS threads, transfers
//!   and disk charges are free (the real work on real bytes *is* the cost)
//!   and the clock is the wall clock. Functional tests and the runnable
//!   examples use this mode.
//!
//! The [`Payload`] type carries either real bytes (live mode / small sims) or
//! a *ghost* length (cluster-scale sims), so experiments that shuffle 6.3 GB
//! across 270 nodes do not need 6.3 GB of RAM while still exercising every
//! control-plane code path.
//!
//! Blocking primitives that integrate with both modes live in [`sync`]:
//! unbounded MPMC [`sync::Queue`]s (service inboxes, heartbeat channels) and
//! one-shot broadcast [`sync::Gate`]s (completion signals, shutdown flags).

pub mod handle;
pub mod live;
pub mod net;
pub mod payload;
pub mod sim;
pub mod stats;
pub mod sync;
pub mod time;
pub mod topology;

mod parker;

pub use handle::{run_parallel, Fabric, JoinHandle, Proc, TaskFn};
pub use net::{NetFault, NetFaultKind, NodeSet};
pub use payload::Payload;
pub use stats::FabricStats;
pub use time::{ns_to_secs, secs_to_ns, SimTime, MICROS, MILLIS, SECS};
pub use topology::{ClusterSpec, NodeId, SpecError};

/// Convenience prelude for downstream crates.
pub mod prelude {
    pub use crate::sync::{Gate, Queue};
    pub use crate::{
        ns_to_secs, run_parallel, secs_to_ns, ClusterSpec, Fabric, FabricStats, JoinHandle,
        NetFault, NetFaultKind, NodeId, NodeSet, Payload, Proc, SimTime, MICROS, MILLIS, SECS,
    };
}
