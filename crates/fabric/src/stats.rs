//! Aggregate counters maintained by the fabric: how many bytes moved through
//! each resource, how many transfers/flows/events were processed. Tests use
//! these to assert that work really flowed through the modeled cluster, and
//! the benchmark harnesses report utilization from them.

use crate::topology::{ClusterSpec, NodeId, ResourceKind};

/// Snapshot of fabric-level counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FabricStats {
    /// Bytes (or CPU ops) accounted per resource, indexed like
    /// [`ClusterSpec::resource`].
    pub per_resource: Vec<f64>,
    /// Number of `transfer`-like operations issued (including latency-only
    /// small messages).
    pub transfers: u64,
    /// Number of those that were modeled as fluid flows.
    pub flows: u64,
    /// Total bytes requested across all transfers.
    pub bytes_requested: f64,
    /// Events processed by the simulation engine (0 in live mode).
    pub events: u64,
    /// Current virtual/wall time in nanoseconds.
    pub now_ns: u64,
    /// Times an installed network fault actually penalized a transfer
    /// (0 in live mode and in fault-free simulations).
    pub net_fault_hits: u64,
}

impl FabricStats {
    /// Bytes accounted to a node's resource.
    pub fn resource_total(&self, spec: &ClusterSpec, node: NodeId, kind: ResourceKind) -> f64 {
        let idx = spec.resource(node, kind) as usize;
        self.per_resource.get(idx).copied().unwrap_or(0.0)
    }

    /// Mean utilization of a resource kind across all nodes over `[0, now]`.
    pub fn mean_utilization(&self, spec: &ClusterSpec, kind: ResourceKind) -> f64 {
        if self.now_ns == 0 {
            return 0.0;
        }
        let elapsed = self.now_ns as f64 / 1e9;
        let mut total = 0.0;
        let mut cap = 0.0;
        for n in spec.all_nodes() {
            total += self.resource_total(spec, n, kind);
            cap += spec.capacity(spec.resource(n, kind)) * elapsed;
        }
        if cap == 0.0 {
            0.0
        } else {
            total / cap
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_zero_when_idle() {
        let spec = ClusterSpec::tiny(2);
        let st = FabricStats {
            per_resource: vec![0.0; spec.resource_count()],
            now_ns: 1_000_000_000,
            ..Default::default()
        };
        assert_eq!(st.mean_utilization(&spec, ResourceKind::Tx), 0.0);
    }

    #[test]
    fn utilization_accounts_capacity() {
        let spec = ClusterSpec::tiny(1);
        let mut per = vec![0.0; spec.resource_count()];
        per[spec.resource(NodeId(0), ResourceKind::Tx) as usize] = spec.nic_bw; // 1s at full rate
        let st = FabricStats {
            per_resource: per,
            now_ns: 2_000_000_000, // 2s elapsed -> 50% utilization
            ..Default::default()
        };
        let u = st.mean_utilization(&spec, ResourceKind::Tx);
        assert!((u - 0.5).abs() < 1e-9, "{u}");
    }
}
