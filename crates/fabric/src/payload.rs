//! Data-plane payloads: real bytes or "ghost" lengths.
//!
//! Cluster-scale experiments move tens of gigabytes between hundreds of
//! simulated nodes; materializing those bytes would dwarf available memory
//! without adding information (the fluid flow model only needs sizes). A
//! [`Payload`] therefore carries either real [`bytes::Bytes`] (live mode,
//! functional tests) or just a length. All store/FS code paths are written
//! against this type, so the control plane is identical in both cases.

use bytes::Bytes;

/// A chunk of data moving through the system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Real bytes (zero-copy slicing via [`bytes::Bytes`]).
    Bytes(Bytes),
    /// Size-only stand-in used by cluster-scale simulations.
    Ghost(u64),
}

impl Payload {
    /// An empty real payload.
    pub fn empty() -> Self {
        Payload::Bytes(Bytes::new())
    }

    /// A ghost payload of `len` bytes.
    pub fn ghost(len: u64) -> Self {
        Payload::Ghost(len)
    }

    /// Wrap an owned byte vector.
    pub fn from_vec(v: Vec<u8>) -> Self {
        Payload::Bytes(Bytes::from(v))
    }

    /// Wrap a static byte slice.
    pub fn from_static(s: &'static [u8]) -> Self {
        Payload::Bytes(Bytes::from_static(s))
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Payload::Bytes(b) => b.len() as u64,
            Payload::Ghost(n) => *n,
        }
    }

    /// True when the payload holds zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for ghost payloads.
    pub fn is_ghost(&self) -> bool {
        matches!(self, Payload::Ghost(_))
    }

    /// Borrow the real bytes.
    ///
    /// # Panics
    /// Panics on ghost payloads — callers that may legitimately receive
    /// ghosts must branch on [`Payload::is_ghost`] first.
    pub fn bytes(&self) -> &Bytes {
        match self {
            Payload::Bytes(b) => b,
            Payload::Ghost(n) => panic!("attempted to read bytes of a ghost payload ({n} B)"),
        }
    }

    /// Sub-range `[start, start+len)` of this payload (cheap: ghost payloads
    /// just shrink their length; real payloads share the underlying buffer).
    ///
    /// # Panics
    /// Panics when the range exceeds the payload.
    pub fn slice(&self, start: u64, len: u64) -> Payload {
        let total = self.len();
        assert!(
            start.checked_add(len).is_some_and(|end| end <= total),
            "slice [{start}, {start}+{len}) out of payload of {total} B"
        );
        match self {
            Payload::Bytes(b) => Payload::Bytes(b.slice(start as usize..(start + len) as usize)),
            Payload::Ghost(_) => Payload::Ghost(len),
        }
    }

    /// Split into consecutive chunks of at most `chunk` bytes, preserving
    /// order. An empty payload yields no chunks.
    pub fn chunks(&self, chunk: u64) -> Vec<Payload> {
        assert!(chunk > 0, "chunk size must be positive");
        let mut out = Vec::with_capacity(self.len().div_ceil(chunk.max(1)) as usize);
        let mut off = 0;
        while off < self.len() {
            let n = chunk.min(self.len() - off);
            out.push(self.slice(off, n));
            off += n;
        }
        out
    }

    /// Concatenate payloads. Mixing real and ghost parts produces a ghost of
    /// the combined length (information about the bytes is already lost).
    pub fn concat(parts: &[Payload]) -> Payload {
        if parts.iter().any(Payload::is_ghost) {
            return Payload::Ghost(parts.iter().map(Payload::len).sum());
        }
        let total: u64 = parts.iter().map(Payload::len).sum();
        let mut v = Vec::with_capacity(total as usize);
        for p in parts {
            v.extend_from_slice(p.bytes());
        }
        Payload::from_vec(v)
    }

    /// FNV-1a fingerprint of the content (ghosts hash their length tagged
    /// separately so a ghost never collides with real bytes by accident).
    /// Used by tests to compare data without keeping copies around.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x1000_0000_01b3;
        match self {
            Payload::Bytes(b) => {
                let mut h = OFFSET;
                for &byte in b.iter() {
                    h ^= byte as u64;
                    h = h.wrapping_mul(PRIME);
                }
                h
            }
            Payload::Ghost(n) => OFFSET ^ n.wrapping_mul(PRIME) ^ 0xDEAD_BEEF,
        }
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload::from_vec(v)
    }
}

impl From<&str> for Payload {
    fn from(s: &str) -> Self {
        Payload::from_vec(s.as_bytes().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicing_real_and_ghost() {
        let p = Payload::from_vec(b"hello world".to_vec());
        assert_eq!(p.len(), 11);
        assert_eq!(p.slice(6, 5).bytes().as_ref(), b"world");
        let g = Payload::ghost(100);
        assert_eq!(g.slice(10, 30).len(), 30);
        assert!(g.slice(10, 30).is_ghost());
    }

    #[test]
    #[should_panic(expected = "out of payload")]
    fn slice_out_of_range_panics() {
        Payload::ghost(10).slice(5, 6);
    }

    #[test]
    #[should_panic(expected = "ghost payload")]
    fn bytes_of_ghost_panics() {
        Payload::ghost(1).bytes();
    }

    #[test]
    fn chunking() {
        let p = Payload::from_vec((0u8..=9).collect());
        let cs = p.chunks(4);
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0].len(), 4);
        assert_eq!(cs[2].len(), 2);
        assert_eq!(Payload::concat(&cs), p);
        assert!(Payload::empty().chunks(4).is_empty());
    }

    #[test]
    fn concat_mixed_degrades_to_ghost() {
        let mixed = Payload::concat(&[Payload::from_vec(vec![1, 2]), Payload::ghost(3)]);
        assert!(mixed.is_ghost());
        assert_eq!(mixed.len(), 5);
    }

    #[test]
    fn fingerprints_differ() {
        let a = Payload::from_vec(b"aaa".to_vec());
        let b = Payload::from_vec(b"aab".to_vec());
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(
            a.fingerprint(),
            Payload::from_vec(b"aaa".to_vec()).fingerprint()
        );
        assert_ne!(Payload::ghost(3).fingerprint(), a.fingerprint());
    }
}
