//! Virtual time. All fabric clocks are expressed in nanoseconds since the
//! start of the run, in both sim and live modes.

/// A point in (virtual or wall) time, nanoseconds since run start.
pub type SimTime = u64;

/// One microsecond in [`SimTime`] units.
pub const MICROS: u64 = 1_000;
/// One millisecond in [`SimTime`] units.
pub const MILLIS: u64 = 1_000_000;
/// One second in [`SimTime`] units.
pub const SECS: u64 = 1_000_000_000;

/// Convert seconds (fractional) to nanoseconds, saturating.
#[inline]
pub fn secs_to_ns(secs: f64) -> u64 {
    if secs <= 0.0 {
        0
    } else {
        (secs * SECS as f64).round().min(u64::MAX as f64) as u64
    }
}

/// Convert nanoseconds to fractional seconds.
#[inline]
pub fn ns_to_secs(ns: u64) -> f64 {
    ns as f64 / SECS as f64
}

/// Render a time span as a short human-readable string (for logs/tables).
pub fn fmt_ns(ns: u64) -> String {
    if ns >= SECS {
        format!("{:.3}s", ns_to_secs(ns))
    } else if ns >= MILLIS {
        format!("{:.3}ms", ns as f64 / MILLIS as f64)
    } else if ns >= MICROS {
        format!("{:.3}us", ns as f64 / MICROS as f64)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_ns_round_trip() {
        assert_eq!(secs_to_ns(1.0), SECS);
        assert_eq!(secs_to_ns(0.5), 500 * MILLIS);
        assert_eq!(secs_to_ns(0.0), 0);
        assert_eq!(secs_to_ns(-3.0), 0);
        let x = 123.456_789;
        assert!((ns_to_secs(secs_to_ns(x)) - x).abs() < 1e-9);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ns(5), "5ns");
        assert_eq!(fmt_ns(5 * MICROS), "5.000us");
        assert_eq!(fmt_ns(5 * MILLIS), "5.000ms");
        assert_eq!(fmt_ns(5 * SECS), "5.000s");
    }
}
