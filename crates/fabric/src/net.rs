//! Deterministic network-fault model for the simulator.
//!
//! A [`NetFault`] is a *windowed* rule over transfers: while the virtual
//! clock is inside `[from_ns, until_ns)`, transfers matching the rule's
//! endpoint sets pay an extra cost before their normal latency/flow:
//!
//! * [`NetFaultKind::Delay`] — a fixed extra latency (congestion, a slow
//!   switch port, a GC-pausing peer).
//! * [`NetFaultKind::Drop`] — each matching message is lost with probability
//!   `prob` and retransmitted after `retransmit_ns` (the transport recovers;
//!   the cost is the retry timeout). Draws come from a dedicated RNG stream
//!   seeded from the fabric seed, so a given seed yields the same losses.
//! * [`NetFaultKind::Partition`] — the two sides cannot talk at all: a
//!   matching transfer stalls until the window closes (TCP keeps the
//!   connection open across a transient partition), then proceeds.
//!
//! Faults only shape *when* modeled messages complete — they never corrupt
//! payloads and never affect live mode, where real threads move real bytes.
//! Because every penalty is either a pure function of the window or a draw
//! from the seeded fault stream, a simulation with faults is exactly as
//! deterministic as one without.

use crate::time::SimTime;
use crate::topology::NodeId;

/// A set of nodes used to scope a fault to part of the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeSet {
    /// Every node.
    Any,
    /// A single node.
    One(NodeId),
    /// An explicit group of nodes.
    Group(Vec<NodeId>),
}

impl NodeSet {
    pub fn contains(&self, n: NodeId) -> bool {
        match self {
            NodeSet::Any => true,
            NodeSet::One(m) => *m == n,
            NodeSet::Group(g) => g.contains(&n),
        }
    }
}

/// What a matching transfer suffers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetFaultKind {
    /// Add `extra_ns` of latency to every matching transfer.
    Delay { extra_ns: u64 },
    /// Lose each matching message with probability `prob`; a lost message
    /// costs one `retransmit_ns` retry timeout (repeated losses of the same
    /// message are folded into the single draw — the shape chaos cares
    /// about is "this link is lossy and slow", not TCP minutiae).
    Drop { prob: f64, retransmit_ns: u64 },
    /// No traffic crosses between the two sides; matching transfers stall
    /// until the window closes. Matching is symmetric (`a`→`b` and `b`→`a`).
    Partition,
}

/// One windowed fault rule. Construct via [`NetFault::delay`],
/// [`NetFault::drop`] or [`NetFault::partition`] and install it with
/// `Fabric::inject_net_fault`.
#[derive(Debug, Clone, PartialEq)]
pub struct NetFault {
    /// Window start (virtual ns, inclusive).
    pub from_ns: SimTime,
    /// Window end (virtual ns, exclusive). Also the heal instant for
    /// partitions.
    pub until_ns: SimTime,
    /// Source side (directional for Delay/Drop; either side for Partition).
    pub a: NodeSet,
    /// Destination side.
    pub b: NodeSet,
    pub kind: NetFaultKind,
}

impl NetFault {
    /// Extra latency on `a`→`b` transfers during the window.
    pub fn delay(
        from_ns: SimTime,
        until_ns: SimTime,
        a: NodeSet,
        b: NodeSet,
        extra_ns: u64,
    ) -> Self {
        NetFault {
            from_ns,
            until_ns,
            a,
            b,
            kind: NetFaultKind::Delay { extra_ns },
        }
    }

    /// Probabilistic loss (modeled as a retransmit timeout) on `a`→`b`
    /// transfers during the window.
    pub fn drop(
        from_ns: SimTime,
        until_ns: SimTime,
        a: NodeSet,
        b: NodeSet,
        prob: f64,
        retransmit_ns: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&prob),
            "drop probability {prob} not in [0, 1]"
        );
        NetFault {
            from_ns,
            until_ns,
            a,
            b,
            kind: NetFaultKind::Drop {
                prob,
                retransmit_ns,
            },
        }
    }

    /// Transient partition between the `a` and `b` sides during the window.
    pub fn partition(from_ns: SimTime, until_ns: SimTime, a: NodeSet, b: NodeSet) -> Self {
        NetFault {
            from_ns,
            until_ns,
            a,
            b,
            kind: NetFaultKind::Partition,
        }
    }

    /// Does this rule apply to a transfer `src`→`dst` (window already
    /// checked by the caller)?
    pub(crate) fn matches(&self, src: NodeId, dst: NodeId) -> bool {
        match self.kind {
            // Partitions cut both directions of the link.
            NetFaultKind::Partition => {
                (self.a.contains(src) && self.b.contains(dst))
                    || (self.a.contains(dst) && self.b.contains(src))
            }
            _ => self.a.contains(src) && self.b.contains(dst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_sets_match() {
        assert!(NodeSet::Any.contains(NodeId(7)));
        assert!(NodeSet::One(NodeId(3)).contains(NodeId(3)));
        assert!(!NodeSet::One(NodeId(3)).contains(NodeId(4)));
        let g = NodeSet::Group(vec![NodeId(1), NodeId(2)]);
        assert!(g.contains(NodeId(2)));
        assert!(!g.contains(NodeId(0)));
    }

    #[test]
    fn partitions_match_symmetrically() {
        let f = NetFault::partition(0, 10, NodeSet::One(NodeId(0)), NodeSet::One(NodeId(1)));
        assert!(f.matches(NodeId(0), NodeId(1)));
        assert!(f.matches(NodeId(1), NodeId(0)));
        assert!(!f.matches(NodeId(0), NodeId(2)));
    }

    #[test]
    fn delays_are_directional() {
        let f = NetFault::delay(0, 10, NodeSet::One(NodeId(0)), NodeSet::Any, 5);
        assert!(f.matches(NodeId(0), NodeId(1)));
        assert!(!f.matches(NodeId(1), NodeId(0)));
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn drop_probability_validated() {
        let _ = NetFault::drop(0, 1, NodeSet::Any, NodeSet::Any, 1.5, 100);
    }
}
