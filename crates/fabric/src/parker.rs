//! Minimal permit-based thread parker (see "Rust Atomics and Locks", ch. 1/9:
//! a Mutex+Condvar pair with a boolean permit avoids lost wakeups even when
//! `unpark` races ahead of `park`).

use parking_lot::{Condvar, Mutex};

#[derive(Default)]
pub(crate) struct Parker {
    permit: Mutex<bool>,
    cv: Condvar,
}

impl Parker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Block until a permit is available, then consume it.
    pub fn park(&self) {
        let mut permit = self.permit.lock();
        while !*permit {
            self.cv.wait(&mut permit);
        }
        *permit = false;
    }

    /// Make a permit available, waking the parked thread if any.
    pub fn unpark(&self) {
        let mut permit = self.permit.lock();
        *permit = true;
        self.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn unpark_before_park_is_not_lost() {
        let p = Parker::new();
        p.unpark();
        p.park(); // must not block
    }

    #[test]
    fn wakes_parked_thread() {
        let p = Arc::new(Parker::new());
        let p2 = p.clone();
        let t = std::thread::spawn(move || p2.park());
        std::thread::sleep(std::time::Duration::from_millis(10));
        p.unpark();
        t.join().unwrap();
    }

    #[test]
    fn permit_is_consumed() {
        let p = Arc::new(Parker::new());
        p.unpark();
        p.park();
        // Second park must block until a fresh unpark arrives.
        let p2 = p.clone();
        let t = std::thread::spawn(move || p2.park());
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(!t.is_finished());
        p.unpark();
        t.join().unwrap();
    }
}
