//! Public facade: [`Fabric`] (the world), [`Proc`] (a process's capability to
//! act in it) and [`JoinHandle`] (await a spawned process).

use std::cell::{RefCell, RefMut};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::live::LiveCore;
use crate::net::NetFault;
use crate::parker::Parker;
use crate::sim::SimCore;
use crate::stats::FabricStats;
use crate::sync::{Gate, Queue};
use crate::time::SimTime;
use crate::topology::{ClusterSpec, NodeId, ResourceKind};

#[derive(Clone)]
pub(crate) enum FabricInner {
    Sim(Arc<SimCore>),
    Live(Arc<LiveCore>),
}

/// Handle to an execution world (simulated cluster or live threads).
/// Cheap to clone; all clones refer to the same world.
#[derive(Clone)]
pub struct Fabric {
    pub(crate) inner: FabricInner,
}

const DEFAULT_SEED: u64 = 0xB10B_5EE8;

impl Fabric {
    /// A simulated cluster with the default seed.
    pub fn sim(spec: ClusterSpec) -> Fabric {
        Self::sim_seeded(spec, DEFAULT_SEED)
    }

    /// A simulated cluster with an explicit seed (process RNG streams derive
    /// from it; two runs with equal seeds and spawn orders are identical).
    pub fn sim_seeded(spec: ClusterSpec, seed: u64) -> Fabric {
        Fabric {
            inner: FabricInner::Sim(SimCore::new(spec, seed)),
        }
    }

    /// A live world: processes are real threads, time is the wall clock,
    /// modeled costs are free. `spec.nodes` still defines the set of logical
    /// node ids used for placement decisions.
    pub fn live(spec: ClusterSpec) -> Fabric {
        Self::live_seeded(spec, DEFAULT_SEED)
    }

    /// Live world with an explicit RNG seed.
    pub fn live_seeded(spec: ClusterSpec, seed: u64) -> Fabric {
        Fabric {
            inner: FabricInner::Live(LiveCore::new(spec, seed)),
        }
    }

    /// True in simulation mode.
    pub fn is_sim(&self) -> bool {
        matches!(self.inner, FabricInner::Sim(_))
    }

    /// The cluster description.
    pub fn spec(&self) -> &ClusterSpec {
        match &self.inner {
            FabricInner::Sim(c) => &c.spec,
            FabricInner::Live(c) => &c.spec,
        }
    }

    /// The base RNG seed.
    pub fn seed(&self) -> u64 {
        match &self.inner {
            FabricInner::Sim(c) => c.seed,
            FabricInner::Live(c) => c.seed,
        }
    }

    /// Current time in nanoseconds (virtual in sim mode, wall in live mode).
    pub fn now(&self) -> SimTime {
        match &self.inner {
            FabricInner::Sim(c) => c.now(),
            FabricInner::Live(c) => c.now(),
        }
    }

    /// Spawn a process on `node`. In sim mode the process starts when the
    /// engine first schedules it; in live mode it starts immediately.
    pub fn spawn<T, F>(&self, node: NodeId, name: impl Into<String>, f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce(&Proc) -> T + Send + 'static,
    {
        assert!(
            node.0 < self.spec().nodes,
            "spawn on {node} but cluster has {} nodes",
            self.spec().nodes
        );
        let name = name.into();
        let result: Arc<Mutex<Option<Result<T, String>>>> = Arc::new(Mutex::new(None));
        let done = self.gate();
        match &self.inner {
            FabricInner::Sim(core) => {
                let parker = Arc::new(Parker::new());
                let pid = core.register_proc(node, &name, parker.clone());
                let fabric = self.clone();
                let core2 = core.clone();
                let r2 = result.clone();
                let d2 = done.clone();
                let seed = core.seed ^ pid.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let pname: Arc<str> = name.clone().into();
                std::thread::Builder::new()
                    .name(format!("sim:{name}"))
                    .stack_size(1 << 20)
                    .spawn(move || {
                        parker.park();
                        let p = Proc {
                            fabric,
                            node,
                            name: pname,
                            pid,
                            parker: parker.clone(),
                            rng: RefCell::new(StdRng::seed_from_u64(seed)),
                        };
                        match std::panic::catch_unwind(AssertUnwindSafe(|| f(&p))) {
                            Ok(v) => {
                                *r2.lock() = Some(Ok(v));
                                d2.set();
                                core2.proc_finished(pid);
                            }
                            Err(e) => {
                                let msg = panic_msg(e);
                                *r2.lock() = Some(Err(msg.clone()));
                                d2.set();
                                core2.proc_panicked(pid, msg);
                            }
                        }
                    })
                    .expect("failed to spawn sim process thread");
            }
            FabricInner::Live(core) => {
                let pid = core.proc_started();
                let fabric = self.clone();
                let core2 = core.clone();
                let r2 = result.clone();
                let d2 = done.clone();
                let seed = core.seed ^ pid.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let pname: Arc<str> = name.clone().into();
                std::thread::Builder::new()
                    .name(format!("live:{name}"))
                    .spawn(move || {
                        let p = Proc {
                            fabric,
                            node,
                            name: pname.clone(),
                            pid,
                            parker: Arc::new(Parker::new()),
                            rng: RefCell::new(StdRng::seed_from_u64(seed)),
                        };
                        match std::panic::catch_unwind(AssertUnwindSafe(|| f(&p))) {
                            Ok(v) => {
                                *r2.lock() = Some(Ok(v));
                                d2.set();
                                core2.proc_finished();
                            }
                            Err(e) => {
                                let msg = panic_msg(e);
                                *r2.lock() = Some(Err(msg.clone()));
                                d2.set();
                                core2.proc_panicked(&pname, msg);
                            }
                        }
                    })
                    .expect("failed to spawn live process thread");
            }
        }
        JoinHandle { result, done }
    }

    /// Drive the world to completion: in sim mode, run the event loop until
    /// every process finished; in live mode, wait for all threads. Process
    /// panics are re-raised here. Call from the coordinating (non-process)
    /// thread after spawning the initial processes.
    pub fn run(&self) {
        match &self.inner {
            FabricInner::Sim(c) => c.run(),
            FabricInner::Live(c) => c.run(),
        }
    }

    /// New unbounded MPMC queue bound to this world.
    pub fn queue<T: Send + 'static>(&self) -> Queue<T> {
        Queue::new(self)
    }

    /// New one-shot broadcast gate bound to this world.
    pub fn gate(&self) -> Gate {
        Gate::new(self)
    }

    /// Snapshot of fabric counters.
    pub fn stats(&self) -> FabricStats {
        match &self.inner {
            FabricInner::Sim(c) => c.stats(),
            FabricInner::Live(c) => c.stats(),
        }
    }

    /// Install a network-fault window ([`NetFault`]) in sim mode: matching
    /// remote transfers starting inside the window pay its cost (extra
    /// delay, a retransmission penalty, or a stall until a partition heals).
    /// No-op in live mode, where real packets cannot be shaped.
    pub fn inject_net_fault(&self, fault: NetFault) {
        if let FabricInner::Sim(c) = &self.inner {
            c.inject_net_fault(fault);
        }
    }

    /// Remove every installed network fault (sim mode; no-op in live mode).
    pub fn clear_net_faults(&self) {
        if let FabricInner::Sim(c) = &self.inner {
            c.clear_net_faults();
        }
    }
}

fn panic_msg(e: Box<dyn std::any::Any + Send>) -> String {
    e.downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| e.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// A process's execution context: its identity (node), its clock, and its
/// ability to spend time on modeled resources. Methods that block must be
/// called from the thread running this process.
pub struct Proc {
    fabric: Fabric,
    node: NodeId,
    name: Arc<str>,
    pid: u64,
    parker: Arc<Parker>,
    rng: RefCell<StdRng>,
}

impl Proc {
    /// The world this process lives in.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The node this process runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Process name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    pub(crate) fn pid(&self) -> u64 {
        self.pid
    }

    pub(crate) fn park(&self) {
        self.parker.park();
    }

    /// Current time, ns.
    pub fn now(&self) -> SimTime {
        self.fabric.now()
    }

    /// Deterministic per-process RNG stream.
    pub fn rng(&self) -> RefMut<'_, StdRng> {
        self.rng.borrow_mut()
    }

    /// Block for `ns` nanoseconds (virtual in sim mode, real in live mode).
    pub fn sleep(&self, ns: u64) {
        match &self.fabric.inner {
            FabricInner::Sim(c) => c.sleep(self.pid, &self.parker, ns),
            FabricInner::Live(_) => std::thread::sleep(std::time::Duration::from_nanos(ns)),
        }
    }

    /// Let other runnable work proceed before continuing.
    pub fn yield_now(&self) {
        match &self.fabric.inner {
            FabricInner::Sim(c) => c.sleep(self.pid, &self.parker, 0),
            FabricInner::Live(_) => std::thread::yield_now(),
        }
    }

    /// Move `bytes` from `src` to `dst`, blocking until the (modeled)
    /// transfer completes. Node-local moves use the loopback path. Messages
    /// below the cluster's `small_msg_cutoff` are charged latency only.
    pub fn transfer(&self, src: NodeId, dst: NodeId, bytes: u64) {
        match &self.fabric.inner {
            FabricInner::Sim(c) => {
                c.note_transfer(bytes);
                let spec = &c.spec;
                if src == dst {
                    if bytes >= spec.small_msg_cutoff {
                        let res = [spec.resource(src, ResourceKind::Loopback)];
                        c.flow(self.pid, &self.parker, &res, bytes as f64);
                    }
                } else {
                    let penalty = c.net_penalty(src, dst);
                    if penalty > 0 {
                        c.sleep(self.pid, &self.parker, penalty);
                    }
                    c.sleep(self.pid, &self.parker, spec.latency_ns);
                    if bytes >= spec.small_msg_cutoff {
                        let mut res = vec![
                            spec.resource(src, ResourceKind::Tx),
                            spec.resource(dst, ResourceKind::Rx),
                        ];
                        if let Some(bp) = spec.backplane_resource() {
                            res.push(bp);
                        }
                        c.flow(self.pid, &self.parker, &res, bytes as f64);
                    }
                }
            }
            FabricInner::Live(c) => c.note_transfer(bytes),
        }
    }

    /// Move `bytes` along a store-and-forward pipeline visiting `nodes` in
    /// order with cut-through semantics: one fluid flow claims every hop's
    /// TX/RX, so the pipeline runs at the rate of its slowest hop (this is
    /// how HDFS's replication pipeline behaves for large writes).
    pub fn transfer_chain(&self, nodes: &[NodeId], bytes: u64) {
        assert!(!nodes.is_empty(), "transfer chain needs at least one node");
        match &self.fabric.inner {
            FabricInner::Sim(c) => {
                c.note_transfer(bytes);
                let spec = &c.spec;
                let mut res = Vec::with_capacity(nodes.len() * 2);
                let mut penalty = 0u64;
                for pair in nodes.windows(2) {
                    if pair[0] != pair[1] {
                        // Cut-through pipeline: the whole chain stalls on the
                        // worst-afflicted hop, it does not pay each hop's
                        // penalty in sequence.
                        penalty = penalty.max(c.net_penalty(pair[0], pair[1]));
                        res.push(spec.resource(pair[0], ResourceKind::Tx));
                        res.push(spec.resource(pair[1], ResourceKind::Rx));
                        if let Some(bp) = spec.backplane_resource() {
                            res.push(bp);
                        }
                    }
                }
                if penalty > 0 {
                    c.sleep(self.pid, &self.parker, penalty);
                }
                let hops = res.len() as u64 / 2;
                c.sleep(self.pid, &self.parker, spec.latency_ns * hops.max(1));
                if bytes >= spec.small_msg_cutoff && !res.is_empty() {
                    res.sort_unstable();
                    res.dedup();
                    c.flow(self.pid, &self.parker, &res, bytes as f64);
                }
            }
            FabricInner::Live(c) => c.note_transfer(bytes),
        }
    }

    /// Convenience: transfer from this process's node to `dst`.
    pub fn send_to(&self, dst: NodeId, bytes: u64) {
        self.transfer(self.node, dst, bytes);
    }

    /// Convenience: transfer from `src` to this process's node.
    pub fn fetch_from(&self, src: NodeId, bytes: u64) {
        self.transfer(src, self.node, bytes);
    }

    /// A request/response control exchange with `dst` (two latency-dominated
    /// messages).
    pub fn rpc(&self, dst: NodeId, req_bytes: u64, resp_bytes: u64) {
        self.transfer(self.node, dst, req_bytes);
        self.transfer(dst, self.node, resp_bytes);
    }

    /// Charge a disk write of `bytes` on `node`.
    pub fn disk_write(&self, node: NodeId, bytes: u64) {
        self.disk_io(node, bytes)
    }

    /// Charge a disk read of `bytes` on `node`.
    pub fn disk_read(&self, node: NodeId, bytes: u64) {
        self.disk_io(node, bytes)
    }

    fn disk_io(&self, node: NodeId, bytes: u64) {
        if let FabricInner::Sim(c) = &self.fabric.inner {
            if bytes > 0 {
                let res = [c.spec.resource(node, ResourceKind::Disk)];
                c.flow(self.pid, &self.parker, &res, bytes as f64);
            }
        }
    }

    /// Charge `ops` abstract CPU operations on `node` (shared max-min with
    /// other computations on the same node).
    pub fn compute(&self, node: NodeId, ops: u64) {
        if let FabricInner::Sim(c) = &self.fabric.inner {
            if ops > 0 {
                let res = [c.spec.resource(node, ResourceKind::Cpu)];
                c.flow(self.pid, &self.parker, &res, ops as f64);
            }
        }
    }
}

/// A boxed unit of work for [`run_parallel`].
pub type TaskFn<R> = Box<dyn FnOnce(&Proc) -> R + Send>;

/// Run `tasks` concurrently as sibling processes of `p` on the same node,
/// blocking until all complete; results come back in task order. A single
/// task runs inline (no spawn overhead). This is the building block for
/// client-side parallel I/O (parallel page writes/fetches, shuffle fans).
pub fn run_parallel<R: Send + 'static>(p: &Proc, label: &str, tasks: Vec<TaskFn<R>>) -> Vec<R> {
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        let t = tasks.into_iter().next().unwrap();
        return vec![t(p)];
    }
    let q: crate::sync::Queue<(usize, R)> = p.fabric().queue();
    for (i, t) in tasks.into_iter().enumerate() {
        let q2 = q.clone();
        p.fabric()
            .spawn(p.node(), format!("{label}#{i}"), move |wp| {
                q2.send((i, t(wp)));
            });
    }
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for _ in 0..n {
        let (i, r) = q.recv(p).expect("parallel worker queue closed");
        out[i] = Some(r);
    }
    out.into_iter().map(|o| o.expect("worker result")).collect()
}

/// Handle to a spawned process; lets other processes (or the main thread,
/// after [`Fabric::run`]) retrieve its result.
pub struct JoinHandle<T> {
    result: Arc<Mutex<Option<Result<T, String>>>>,
    done: Gate,
}

impl<T> JoinHandle<T> {
    /// Block the calling process until the target finishes, then take its
    /// result. Panics if the target panicked or the result was already taken.
    pub fn join(&self, p: &Proc) -> T {
        self.done.wait(p);
        self.take().expect("process result already taken")
    }

    /// Non-blocking: take the result if the process has finished.
    /// Panics if the target panicked.
    pub fn take(&self) -> Option<T> {
        match self.result.lock().take() {
            None => None,
            Some(Ok(v)) => Some(v),
            Some(Err(e)) => panic!("joined process panicked: {e}"),
        }
    }

    /// True once the process has finished (successfully or not).
    pub fn is_finished(&self) -> bool {
        self.done.is_set()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{MILLIS, SECS};

    #[test]
    fn sim_ping_pong_through_queues() {
        let fx = Fabric::sim(ClusterSpec::tiny(2));
        let ping: Queue<u64> = fx.queue();
        let pong: Queue<u64> = fx.queue();
        let (p2, q2) = (ping.clone(), pong.clone());
        let server = fx.spawn(NodeId(1), "server", move |p| {
            let mut served = 0;
            while let Some(x) = p2.recv(p) {
                q2.send(x * 2);
                served += 1;
            }
            served
        });
        let (p3, q3) = (ping, pong);
        let client = fx.spawn(NodeId(0), "client", move |p| {
            let mut total = 0u64;
            for i in 1..=10 {
                p3.send(i);
                total += q3.recv(p).unwrap();
            }
            p3.close();
            total
        });
        fx.run();
        assert_eq!(client.take(), Some(110));
        assert_eq!(server.take(), Some(10));
    }

    #[test]
    fn sim_transfer_times_match_model() {
        let spec = ClusterSpec::tiny(2);
        let bw = spec.nic_bw;
        let lat = spec.latency_ns;
        let fx = Fabric::sim(spec);
        let h = fx.spawn(NodeId(0), "xfer", move |p| {
            let start = p.now();
            p.send_to(NodeId(1), 117_000_000); // 1s at nic_bw=117MB/s
            p.now() - start
        });
        fx.run();
        let took = h.take().unwrap();
        let expect = lat + (117_000_000.0 / bw * 1e9) as u64;
        assert!(
            (took as i64 - expect as i64).unsigned_abs() < 10_000,
            "took {took}, expected ~{expect}"
        );
    }

    #[test]
    fn small_messages_cost_latency_only() {
        let spec = ClusterSpec::tiny(2);
        let lat = spec.latency_ns;
        let fx = Fabric::sim(spec);
        let h = fx.spawn(NodeId(0), "rpc", move |p| {
            let start = p.now();
            p.rpc(NodeId(1), 100, 100);
            p.now() - start
        });
        fx.run();
        assert_eq!(h.take().unwrap(), 2 * lat);
    }

    #[test]
    fn chain_transfer_is_bottlenecked_once() {
        // A 3-hop pipeline of equal links moves data at single-link speed.
        let spec = ClusterSpec::tiny(4);
        let bw = spec.nic_bw;
        let lat = spec.latency_ns;
        let fx = Fabric::sim(spec);
        let h = fx.spawn(NodeId(0), "pipe", move |p| {
            let start = p.now();
            p.transfer_chain(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)], 117_000_000);
            p.now() - start
        });
        fx.run();
        let took = h.take().unwrap();
        let expect = 3 * lat + (117_000_000.0 / bw * 1e9) as u64;
        assert!(
            (took as i64 - expect as i64).unsigned_abs() < 10_000,
            "took {took}, expected ~{expect}"
        );
    }

    #[test]
    fn compute_shares_cpu() {
        let spec = ClusterSpec::tiny(1).with_cpu_ops(1e9);
        let fx = Fabric::sim(spec);
        let mut hs = Vec::new();
        for i in 0..2 {
            hs.push(fx.spawn(NodeId(0), format!("cpu{i}"), move |p| {
                p.compute(NodeId(0), 1_000_000_000); // 1s alone, 2s shared
                p.now()
            }));
        }
        fx.run();
        for h in hs {
            let t = h.take().unwrap();
            assert!((t as f64 - 2e9).abs() < 1e4, "finished at {t}");
        }
    }

    #[test]
    fn gate_broadcasts_to_all_waiters() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let g = fx.gate();
        let mut hs = Vec::new();
        for i in 0..3u32 {
            let g2 = g.clone();
            hs.push(fx.spawn(NodeId(i), format!("w{i}"), move |p| {
                g2.wait(p);
                p.now()
            }));
        }
        let g3 = g;
        fx.spawn(NodeId(3), "setter", move |p| {
            p.sleep(5 * MILLIS);
            g3.set();
        });
        fx.run();
        for h in hs {
            assert_eq!(h.take().unwrap(), 5 * MILLIS);
        }
    }

    #[test]
    fn fabric_level_determinism() {
        let run = |seed| {
            let fx = Fabric::sim_seeded(ClusterSpec::tiny(16), seed);
            let q = fx.queue::<u32>();
            for i in 0..8u32 {
                let q2 = q.clone();
                fx.spawn(NodeId(i), format!("p{i}"), move |p| {
                    let jitter = {
                        let mut rng = p.rng();
                        rand::Rng::gen_range(&mut *rng, 0..1000u64)
                    };
                    p.sleep(jitter * MILLIS);
                    p.send_to(NodeId((i + 1) % 16), 10_000_000);
                    q2.send(i);
                });
            }
            let q3 = q.clone();
            let collector = fx.spawn(NodeId(15), "collector", move |p| {
                let mut order = Vec::new();
                for _ in 0..8 {
                    order.push(q3.recv(p).unwrap());
                }
                order
            });
            fx.run();
            let s = fx.stats();
            (collector.take().unwrap(), s.events, s.now_ns)
        };
        assert_eq!(run(7), run(7));
        // A different seed shifts the jitters and hence the arrival order.
        let a = run(7);
        let b = run(8);
        assert!(a.0 != b.0 || a.2 != b.2);
    }

    #[test]
    fn live_mode_smoke() {
        let fx = Fabric::live(ClusterSpec::tiny(2));
        let q = fx.queue::<u32>();
        let q2 = q.clone();
        let h = fx.spawn(NodeId(0), "recv", move |p| {
            let mut sum = 0;
            while let Some(x) = q2.recv(p) {
                sum += x;
            }
            sum
        });
        let q3 = q;
        fx.spawn(NodeId(1), "send", move |p| {
            for i in 1..=4 {
                q3.send(i);
                p.sleep(MILLIS);
            }
            q3.close();
        });
        fx.run();
        assert_eq!(h.take(), Some(10));
        assert!(fx.now() > 0);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected_and_reported() {
        let fx = Fabric::sim(ClusterSpec::tiny(1));
        let g = fx.gate();
        fx.spawn(NodeId(0), "stuck", move |p| g.wait(p));
        fx.run();
    }

    #[test]
    fn net_delay_fault_slows_matching_transfers() {
        let spec = ClusterSpec::tiny(3);
        let lat = spec.latency_ns;
        let fx = Fabric::sim(spec);
        fx.inject_net_fault(crate::NetFault::delay(
            0,
            SECS,
            crate::NodeSet::One(NodeId(0)),
            crate::NodeSet::One(NodeId(1)),
            7 * MILLIS,
        ));
        let hit = fx.spawn(NodeId(0), "hit", move |p| {
            let start = p.now();
            p.rpc(NodeId(1), 100, 100); // request matches, response doesn't
            p.now() - start
        });
        let miss = fx.spawn(NodeId(2), "miss", move |p| {
            let start = p.now();
            p.send_to(NodeId(1), 100);
            p.now() - start
        });
        fx.run();
        assert_eq!(hit.take().unwrap(), 2 * lat + 7 * MILLIS);
        assert_eq!(miss.take().unwrap(), lat);
        assert_eq!(fx.stats().net_fault_hits, 1);
    }

    #[test]
    fn net_partition_stalls_until_heal() {
        let spec = ClusterSpec::tiny(2);
        let lat = spec.latency_ns;
        let fx = Fabric::sim(spec);
        fx.inject_net_fault(crate::NetFault::partition(
            0,
            50 * MILLIS,
            crate::NodeSet::One(NodeId(0)),
            crate::NodeSet::One(NodeId(1)),
        ));
        // Both directions stall; a transfer started mid-window waits only
        // for the remainder of the window.
        let h = fx.spawn(NodeId(1), "cut", move |p| {
            p.sleep(10 * MILLIS);
            p.send_to(NodeId(0), 100);
            let healed_at = p.now();
            p.send_to(NodeId(0), 100); // window over: plain latency
            (healed_at, p.now())
        });
        fx.run();
        let (healed_at, after) = h.take().unwrap();
        assert_eq!(healed_at, 50 * MILLIS + lat);
        assert_eq!(after, healed_at + lat);
    }

    #[test]
    fn net_drop_fault_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let fx = Fabric::sim_seeded(ClusterSpec::tiny(2), seed);
            fx.inject_net_fault(crate::NetFault::drop(
                0,
                10 * SECS,
                crate::NodeSet::Any,
                crate::NodeSet::Any,
                0.5,
                MILLIS,
            ));
            let h = fx.spawn(NodeId(0), "lossy", move |p| {
                for _ in 0..50 {
                    p.send_to(NodeId(1), 100);
                }
                p.now()
            });
            fx.run();
            (h.take().unwrap(), fx.stats().net_fault_hits)
        };
        let (t1, hits1) = run(7);
        assert_eq!((t1, hits1), run(7));
        assert!(hits1 > 0 && hits1 < 50, "p=0.5 over 50 sends, got {hits1}");
        assert_ne!(run(8).1, hits1, "different seed, different losses");
    }

    #[test]
    fn clear_net_faults_heals_immediately() {
        let spec = ClusterSpec::tiny(2);
        let lat = spec.latency_ns;
        let fx = Fabric::sim(spec);
        fx.inject_net_fault(crate::NetFault::delay(
            0,
            SECS,
            crate::NodeSet::Any,
            crate::NodeSet::Any,
            MILLIS,
        ));
        fx.clear_net_faults();
        let h = fx.spawn(NodeId(0), "fine", move |p| {
            let start = p.now();
            p.send_to(NodeId(1), 100);
            p.now() - start
        });
        fx.run();
        assert_eq!(h.take().unwrap(), lat);
        assert_eq!(fx.stats().net_fault_hits, 0);
    }

    #[test]
    #[allow(clippy::disallowed_methods)] // measures host time on purpose
    fn virtual_time_is_free() {
        // A year of virtual idling must simulate instantly.
        let fx = Fabric::sim(ClusterSpec::tiny(1));
        fx.spawn(NodeId(0), "rip-van-winkle", move |p| {
            p.sleep(365 * 24 * 3600 * SECS);
        });
        let wall = std::time::Instant::now();
        fx.run();
        assert!(wall.elapsed().as_secs() < 2);
        assert_eq!(fx.now(), 365 * 24 * 3600 * SECS);
    }
}
