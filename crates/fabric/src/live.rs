//! Live execution mode: the same [`crate::Proc`] API mapped onto real OS
//! threads and the wall clock. Transfers, disk charges and compute charges
//! are free — in live mode the *actual* work performed on real payload bytes
//! is the cost. This is the mode used by functional tests and the runnable
//! examples; nodes are purely logical placement labels.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::stats::FabricStats;
use crate::time::SimTime;
use crate::topology::ClusterSpec;

struct LiveState {
    live: u32,
    next_proc_id: u64,
    panics: Vec<String>,
    transfers: u64,
    bytes_requested: f64,
}

pub(crate) struct LiveCore {
    pub spec: ClusterSpec,
    pub seed: u64,
    start: Instant,
    state: Mutex<LiveState>,
    cv: Condvar,
}

impl LiveCore {
    // Live mode IS the time boundary: this Instant anchors the wall clock
    // every live-mode timestamp derives from.
    #[allow(clippy::disallowed_methods)]
    pub fn new(spec: ClusterSpec, seed: u64) -> Arc<Self> {
        Arc::new(LiveCore {
            spec,
            seed,
            start: Instant::now(),
            state: Mutex::new(LiveState {
                live: 0,
                next_proc_id: 0,
                panics: Vec::new(),
                transfers: 0,
                bytes_requested: 0.0,
            }),
            cv: Condvar::new(),
        })
    }

    pub fn now(&self) -> SimTime {
        self.start.elapsed().as_nanos() as SimTime
    }

    pub fn proc_started(&self) -> u64 {
        let mut st = self.state.lock();
        st.live += 1;
        let pid = st.next_proc_id;
        st.next_proc_id += 1;
        pid
    }

    pub fn proc_finished(&self) {
        let mut st = self.state.lock();
        st.live -= 1;
        if st.live == 0 {
            self.cv.notify_all();
        }
    }

    pub fn proc_panicked(&self, name: &str, msg: String) {
        let mut st = self.state.lock();
        st.panics.push(format!("process '{name}' panicked: {msg}"));
        st.live -= 1;
        if st.live == 0 {
            self.cv.notify_all();
        }
    }

    pub fn note_transfer(&self, bytes: u64) {
        let mut st = self.state.lock();
        st.transfers += 1;
        st.bytes_requested += bytes as f64;
    }

    /// Wait for all spawned processes to finish; re-raise collected panics.
    pub fn run(&self) {
        let mut st = self.state.lock();
        while st.live > 0 {
            self.cv.wait(&mut st);
        }
        let panics = std::mem::take(&mut st.panics);
        drop(st);
        if !panics.is_empty() {
            panic!("{}", panics.join("\n"));
        }
    }

    pub fn stats(&self) -> FabricStats {
        let st = self.state.lock();
        FabricStats {
            per_resource: vec![0.0; self.spec.resource_count()],
            transfers: st.transfers,
            flows: 0,
            bytes_requested: st.bytes_requested,
            events: 0,
            now_ns: self.now(),
            net_fault_hits: 0,
        }
    }
}
