//! Cluster description: nodes and the capacities of their shared resources.
//!
//! The simulated cluster mirrors the paper's environment (§4.1): one
//! switched cluster (Grid'5000 Orsay) where each machine has a full-duplex
//! GigE NIC, a local disk and a handful of cores. Each node therefore
//! contributes five fluid resources to the flow model: NIC transmit, NIC
//! receive, disk, CPU and a loopback path for node-local copies. An optional
//! switch backplane resource models oversubscribed aggregation.

use crate::time::MICROS;

/// Identifier of a cluster node (0-based, dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The kinds of fluid resource attached to every node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceKind {
    /// NIC transmit direction.
    Tx,
    /// NIC receive direction.
    Rx,
    /// Local disk bandwidth (reads and writes share it).
    Disk,
    /// CPU, in "operations per second" (cores folded into the capacity).
    Cpu,
    /// Node-local memory copy path used when source == destination.
    Loopback,
}

/// Number of per-node resources.
pub const RES_PER_NODE: usize = 5;

/// Why a [`ClusterSpec`] cannot describe a runnable cluster.
/// Returned by [`ClusterSpec::validate`] so generators (chaos schedules,
/// sweep harnesses) get a typed rejection instead of a panic deep inside
/// the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The cluster has zero nodes.
    NoNodes,
    /// A capacity is zero, negative, NaN or infinite.
    BadCapacity { what: &'static str, value: f64 },
    /// The configured backplane capacity is not a positive finite number.
    BadBackplane { value: f64 },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::NoNodes => write!(f, "cluster spec has zero nodes"),
            SpecError::BadCapacity { what, value } => {
                write!(f, "{what} must be positive and finite, got {value}")
            }
            SpecError::BadBackplane { value } => {
                write!(
                    f,
                    "backplane bandwidth must be positive and finite, got {value}"
                )
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Static description of the simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: u32,
    /// NIC bandwidth per direction, bytes/second.
    pub nic_bw: f64,
    /// Disk bandwidth, bytes/second.
    pub disk_bw: f64,
    /// Loopback (memcpy) bandwidth, bytes/second.
    pub loopback_bw: f64,
    /// CPU capacity, abstract operations/second (all cores combined).
    pub cpu_ops: f64,
    /// One-way latency charged per message/flow start, nanoseconds.
    pub latency_ns: u64,
    /// Optional aggregate switch backplane capacity shared by *all* remote
    /// flows, bytes/second. `None` = non-blocking switch.
    pub backplane_bw: Option<f64>,
    /// Messages strictly smaller than this many bytes are charged latency
    /// only instead of creating a bandwidth flow. Control-plane RPCs are tiny
    /// compared to 64 MB pages; skipping their flows keeps the event count
    /// (and hence simulation cost) proportional to data movement.
    pub small_msg_cutoff: u64,
}

impl ClusterSpec {
    /// A cluster shaped like the paper's deployment on the Orsay site:
    /// GigE network (~117 MB/s of goodput per direction), commodity disks
    /// whose page store is memory-buffered (BlobSeer providers keep pages in
    /// RAM and persist asynchronously, so the disk does not throttle the
    /// benchmarks), and a non-blocking switch.
    pub fn grid5000(nodes: u32) -> Self {
        ClusterSpec {
            nodes,
            nic_bw: 117.0e6,
            disk_bw: 400.0e6,
            loopback_bw: 2.0e9,
            cpu_ops: 2.0e9,
            latency_ns: 100 * MICROS,
            backplane_bw: None,
            small_msg_cutoff: 16 * 1024,
        }
    }

    /// The exact scale used in the paper's evaluation (§4.1): 270 nodes.
    pub fn orsay_270() -> Self {
        Self::grid5000(270)
    }

    /// Tiny cluster for unit tests.
    pub fn tiny(nodes: u32) -> Self {
        Self::grid5000(nodes)
    }

    /// Builder-style override of NIC bandwidth.
    pub fn with_nic_bw(mut self, bw: f64) -> Self {
        self.nic_bw = bw;
        self
    }

    /// Builder-style override of latency.
    pub fn with_latency_ns(mut self, l: u64) -> Self {
        self.latency_ns = l;
        self
    }

    /// Builder-style override of the backplane capacity.
    pub fn with_backplane(mut self, bw: Option<f64>) -> Self {
        self.backplane_bw = bw;
        self
    }

    /// Builder-style override of disk bandwidth.
    pub fn with_disk_bw(mut self, bw: f64) -> Self {
        self.disk_bw = bw;
        self
    }

    /// Builder-style override of CPU capacity.
    pub fn with_cpu_ops(mut self, ops: f64) -> Self {
        self.cpu_ops = ops;
        self
    }

    /// Check that this spec describes a runnable cluster: at least one node
    /// and positive, finite capacities everywhere. Builders stay infallible
    /// (they just set fields); call this before handing a generated spec to
    /// [`crate::Fabric::sim`].
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.nodes == 0 {
            return Err(SpecError::NoNodes);
        }
        for (what, value) in [
            ("nic bandwidth", self.nic_bw),
            ("disk bandwidth", self.disk_bw),
            ("loopback bandwidth", self.loopback_bw),
            ("cpu capacity", self.cpu_ops),
        ] {
            if !(value.is_finite() && value > 0.0) {
                return Err(SpecError::BadCapacity { what, value });
            }
        }
        if let Some(bp) = self.backplane_bw {
            if !(bp.is_finite() && bp > 0.0) {
                return Err(SpecError::BadBackplane { value: bp });
            }
        }
        Ok(())
    }

    /// Total number of fluid resources for this spec.
    pub fn resource_count(&self) -> usize {
        self.nodes as usize * RES_PER_NODE + usize::from(self.backplane_bw.is_some())
    }

    /// Resource index for `(node, kind)`.
    #[inline]
    pub fn resource(&self, node: NodeId, kind: ResourceKind) -> u32 {
        debug_assert!(node.0 < self.nodes, "node {node} out of range");
        let k = match kind {
            ResourceKind::Tx => 0,
            ResourceKind::Rx => 1,
            ResourceKind::Disk => 2,
            ResourceKind::Cpu => 3,
            ResourceKind::Loopback => 4,
        };
        node.0 * RES_PER_NODE as u32 + k
    }

    /// Resource index of the backplane, if configured.
    #[inline]
    pub fn backplane_resource(&self) -> Option<u32> {
        self.backplane_bw
            .is_some()
            .then(|| self.nodes * RES_PER_NODE as u32)
    }

    /// Capacity of resource `idx` in units/second.
    pub fn capacity(&self, idx: u32) -> f64 {
        let per_node = self.nodes * RES_PER_NODE as u32;
        if idx >= per_node {
            return self.backplane_bw.expect("backplane not configured");
        }
        match idx % RES_PER_NODE as u32 {
            0 | 1 => self.nic_bw,
            2 => self.disk_bw,
            3 => self.cpu_ops,
            4 => self.loopback_bw,
            _ => unreachable!(),
        }
    }

    /// All node ids in this cluster.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_indexing_is_dense_and_disjoint() {
        let spec = ClusterSpec::tiny(3).with_backplane(Some(1e9));
        let mut seen = std::collections::HashSet::new();
        for n in spec.all_nodes() {
            for k in [
                ResourceKind::Tx,
                ResourceKind::Rx,
                ResourceKind::Disk,
                ResourceKind::Cpu,
                ResourceKind::Loopback,
            ] {
                assert!(seen.insert(spec.resource(n, k)));
            }
        }
        assert!(seen.insert(spec.backplane_resource().unwrap()));
        assert_eq!(seen.len(), spec.resource_count());
        let max = seen.iter().copied().max().unwrap() as usize;
        assert_eq!(max + 1, spec.resource_count());
    }

    #[test]
    fn capacities_match_kinds() {
        let spec = ClusterSpec::tiny(2);
        let n = NodeId(1);
        assert_eq!(
            spec.capacity(spec.resource(n, ResourceKind::Tx)),
            spec.nic_bw
        );
        assert_eq!(
            spec.capacity(spec.resource(n, ResourceKind::Rx)),
            spec.nic_bw
        );
        assert_eq!(
            spec.capacity(spec.resource(n, ResourceKind::Disk)),
            spec.disk_bw
        );
        assert_eq!(
            spec.capacity(spec.resource(n, ResourceKind::Cpu)),
            spec.cpu_ops
        );
        assert_eq!(
            spec.capacity(spec.resource(n, ResourceKind::Loopback)),
            spec.loopback_bw
        );
    }

    #[test]
    fn orsay_is_270_nodes() {
        assert_eq!(ClusterSpec::orsay_270().nodes, 270);
    }

    #[test]
    fn validate_accepts_stock_specs() {
        assert_eq!(ClusterSpec::tiny(1).validate(), Ok(()));
        assert_eq!(ClusterSpec::orsay_270().validate(), Ok(()));
        assert_eq!(
            ClusterSpec::tiny(4).with_backplane(Some(1e9)).validate(),
            Ok(())
        );
    }

    #[test]
    fn validate_rejects_impossible_topologies() {
        assert_eq!(ClusterSpec::tiny(0).validate(), Err(SpecError::NoNodes));
        assert!(matches!(
            ClusterSpec::tiny(2).with_nic_bw(0.0).validate(),
            Err(SpecError::BadCapacity {
                what: "nic bandwidth",
                ..
            })
        ));
        assert!(matches!(
            ClusterSpec::tiny(2).with_disk_bw(-1.0).validate(),
            Err(SpecError::BadCapacity { .. })
        ));
        assert!(matches!(
            ClusterSpec::tiny(2).with_cpu_ops(f64::NAN).validate(),
            Err(SpecError::BadCapacity { .. })
        ));
        assert!(matches!(
            ClusterSpec::tiny(2)
                .with_backplane(Some(f64::INFINITY))
                .validate(),
            Err(SpecError::BadBackplane { .. })
        ));
        // Errors render a human-readable reason.
        let msg = ClusterSpec::tiny(0).validate().unwrap_err().to_string();
        assert!(msg.contains("zero nodes"), "{msg}");
    }
}
