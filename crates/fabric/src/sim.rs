//! The discrete-event simulation core.
//!
//! Model (SimGrid-style "fluid" network model):
//!
//! * Every node contributes TX/RX/disk/CPU/loopback *resources* with fixed
//!   capacities ([`ClusterSpec`]). An optional backplane resource is shared
//!   by all remote flows.
//! * A *flow* is a quantity of work (bytes, CPU ops) that simultaneously
//!   claims a set of resources. Active flows share each resource max-min
//!   fairly (progressive filling); a flow's rate is the minimum of its
//!   per-resource allocations. When flows start or finish, all rates are
//!   recomputed and completion events rescheduled.
//! * *Processes* are real OS threads that run **one at a time**: a process
//!   executes until it blocks on a flow, a sleep, a queue or a gate, at which
//!   point the engine advances the virtual clock to the next event and wakes
//!   exactly one process. All wakeups travel through the event queue, so a
//!   simulation is deterministic for a fixed seed and spawn order.
//!
//! Stale events are handled with generation counters on both flows and
//! process block-sites, the standard technique for heap-based simulators
//! that cannot delete arbitrary heap entries.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::net::{NetFault, NetFaultKind};
use crate::parker::Parker;
use crate::stats::FabricStats;
use crate::time::SimTime;
use crate::topology::{ClusterSpec, NodeId};

/// Salt xor'd into the fabric seed for the network-fault RNG stream, so
/// fault draws never perturb the per-process RNG streams.
const NET_SALT: u64 = 0x4E45_545F_4641_554C; // "NET_FAUL"

/// Reasons a process can be blocked — used in deadlock diagnostics.
pub(crate) type BlockReason = &'static str;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    /// A fluid flow ran out of work.
    FlowDone { flow: u64, gen: u64 },
    /// Wake a blocked process (sleeps, queue/gate notifications, spawns).
    Wake { proc: u64, gen: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ev {
    time: SimTime,
    seq: u64,
    kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Flow {
    resources: Vec<u32>,
    remaining: f64,
    rate: f64,
    gen: u64,
    waiter: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    Runnable,
    Blocked(&'static str),
    Finished,
}

struct ProcInfo {
    name: String,
    node: NodeId,
    parker: Arc<Parker>,
    state: ProcState,
    /// Incremented on every block; wake events carry the generation they
    /// target so stale wakeups are discarded.
    block_gen: u64,
}

struct SimState {
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<Ev>>,
    flows: BTreeMap<u64, Flow>,
    next_flow_id: u64,
    /// resource -> active flow ids
    res_flows: Vec<Vec<u64>>,
    /// resource -> accumulated work done (bytes / ops)
    res_done: Vec<f64>,
    last_settle: SimTime,
    runnable: u32,
    live_procs: u32,
    procs: HashMap<u64, ProcInfo>,
    next_proc_id: u64,
    panics: Vec<String>,
    transfers: u64,
    flows_started: u64,
    bytes_requested: f64,
    events_processed: u64,
    running: bool,
    // scratch buffers for recompute (reused to avoid per-event allocation)
    scratch_cap: Vec<f64>,
    scratch_nf: Vec<u32>,
    /// Installed network-fault windows (expired ones are pruned lazily).
    net_faults: Vec<NetFault>,
    /// Dedicated RNG stream for Drop draws; decoupled from process RNGs so
    /// installing faults never shifts workload randomness.
    net_rng: StdRng,
    net_fault_hits: u64,
}

pub(crate) struct SimCore {
    pub spec: ClusterSpec,
    pub seed: u64,
    state: Mutex<SimState>,
    engine_cv: Condvar,
}

impl SimCore {
    pub fn new(spec: ClusterSpec, seed: u64) -> Arc<Self> {
        let nres = spec.resource_count();
        Arc::new(SimCore {
            spec,
            seed,
            state: Mutex::new(SimState {
                now: 0,
                seq: 0,
                events: BinaryHeap::new(),
                flows: BTreeMap::new(),
                next_flow_id: 0,
                res_flows: vec![Vec::new(); nres],
                res_done: vec![0.0; nres],
                last_settle: 0,
                runnable: 0,
                live_procs: 0,
                procs: HashMap::new(),
                next_proc_id: 0,
                panics: Vec::new(),
                transfers: 0,
                flows_started: 0,
                bytes_requested: 0.0,
                events_processed: 0,
                running: false,
                scratch_cap: vec![0.0; nres],
                scratch_nf: vec![0; nres],
                net_faults: Vec::new(),
                net_rng: StdRng::seed_from_u64(seed ^ NET_SALT),
                net_fault_hits: 0,
            }),
            engine_cv: Condvar::new(),
        })
    }

    pub fn now(&self) -> SimTime {
        self.state.lock().now
    }

    /// Register a new process in Blocked state and schedule its initial wake
    /// at the current virtual time. Returns the process id.
    pub fn register_proc(&self, node: NodeId, name: &str, parker: Arc<Parker>) -> u64 {
        let mut st = self.state.lock();
        let pid = st.next_proc_id;
        st.next_proc_id += 1;
        st.procs.insert(
            pid,
            ProcInfo {
                name: name.to_string(),
                node,
                parker,
                state: ProcState::Blocked("spawn"),
                block_gen: 0,
            },
        );
        st.live_procs += 1;
        let now = st.now;
        Self::push_event(&mut st, now, EvKind::Wake { proc: pid, gen: 0 });
        pid
    }

    fn push_event(st: &mut SimState, time: SimTime, kind: EvKind) {
        let seq = st.seq;
        st.seq += 1;
        st.events.push(Reverse(Ev { time, seq, kind }));
    }

    /// Mark the calling process blocked and return the fresh block
    /// generation. The caller must subsequently `parker.park()` *without*
    /// holding the state lock. `register` runs under the state lock and may
    /// push events / flows that will eventually wake this generation.
    fn block<R>(
        &self,
        pid: u64,
        reason: BlockReason,
        register: impl FnOnce(&mut SimState, u64) -> R,
    ) -> R {
        let mut st = self.state.lock();
        let p = st.procs.get_mut(&pid).expect("blocking unknown process");
        debug_assert_eq!(
            p.state,
            ProcState::Runnable,
            "process must be running to block"
        );
        p.block_gen += 1;
        p.state = ProcState::Blocked(reason);
        let gen = p.block_gen;
        let out = register(&mut st, gen);
        st.runnable -= 1;
        if st.runnable == 0 {
            self.engine_cv.notify_all();
        }
        out
    }

    /// Same as [`Self::block`] but for callers that already computed their
    /// generation via [`Self::block_prepare`] (queue/gate paths that must
    /// hold their own lock while registering).
    pub(crate) fn block_prepare(&self, pid: u64, reason: BlockReason) -> u64 {
        let mut st = self.state.lock();
        let p = st.procs.get_mut(&pid).expect("blocking unknown process");
        debug_assert_eq!(p.state, ProcState::Runnable);
        p.block_gen += 1;
        p.state = ProcState::Blocked(reason);
        let gen = p.block_gen;
        st.runnable -= 1;
        if st.runnable == 0 {
            self.engine_cv.notify_all();
        }
        gen
    }

    /// Schedule a wake for `(pid, gen)` at the current virtual time.
    /// Harmless if stale — the engine discards mismatched generations.
    pub(crate) fn schedule_wake(&self, pid: u64, gen: u64) {
        let mut st = self.state.lock();
        let now = st.now;
        Self::push_event(&mut st, now, EvKind::Wake { proc: pid, gen });
    }

    /// Block the calling process for `dur` nanoseconds of virtual time.
    pub fn sleep(&self, pid: u64, parker: &Parker, dur: u64) {
        self.block(pid, "sleep", |st, gen| {
            let t = st.now.saturating_add(dur);
            Self::push_event(st, t, EvKind::Wake { proc: pid, gen });
        });
        parker.park();
    }

    /// Block the calling process on a fluid flow of `work` units across
    /// `resources`.
    pub fn flow(&self, pid: u64, parker: &Parker, resources: &[u32], work: f64) {
        if work <= 0.0 {
            return;
        }
        self.block(pid, "flow", |st, _gen| {
            let now = st.now;
            Self::settle(st, now);
            let id = st.next_flow_id;
            st.next_flow_id += 1;
            for &r in resources {
                st.res_flows[r as usize].push(id);
            }
            st.flows.insert(
                id,
                Flow {
                    resources: resources.to_vec(),
                    remaining: work,
                    rate: 0.0,
                    gen: 0,
                    waiter: pid,
                },
            );
            st.flows_started += 1;
            Self::recompute(st, &self.spec);
        });
        parker.park();
    }

    /// Record a transfer request in the stats (called for every message,
    /// including latency-only small ones).
    pub fn note_transfer(&self, bytes: u64) {
        let mut st = self.state.lock();
        st.transfers += 1;
        st.bytes_requested += bytes as f64;
    }

    /// Install a network-fault window. Takes effect immediately; transfers
    /// starting inside `[from_ns, until_ns)` that match the rule pay the
    /// fault's cost.
    pub fn inject_net_fault(&self, fault: NetFault) {
        assert!(
            fault.from_ns < fault.until_ns,
            "net fault window is empty: [{}, {})",
            fault.from_ns,
            fault.until_ns
        );
        self.state.lock().net_faults.push(fault);
    }

    /// Remove every installed network fault (heal the network).
    pub fn clear_net_faults(&self) {
        self.state.lock().net_faults.clear();
    }

    /// Extra nanoseconds a transfer `src`→`dst` starting now must wait for
    /// active network faults: partition stalls until the latest matching
    /// window closes, then delay/drop penalties apply on top. Returns 0 when
    /// no fault matches. Expired windows are pruned as a side effect.
    pub fn net_penalty(&self, src: NodeId, dst: NodeId) -> u64 {
        let mut st = self.state.lock();
        if st.net_faults.is_empty() {
            return 0;
        }
        let now = st.now;
        st.net_faults.retain(|f| f.until_ns > now);
        let mut stall_until: SimTime = 0;
        let mut extra: u64 = 0;
        let mut hits: u64 = 0;
        // Split borrows: faults are read while the RNG draws.
        let SimState {
            net_faults,
            net_rng,
            ..
        } = &mut *st;
        for f in net_faults.iter() {
            if now < f.from_ns || !f.matches(src, dst) {
                continue;
            }
            match f.kind {
                NetFaultKind::Delay { extra_ns } => {
                    extra += extra_ns;
                    hits += 1;
                }
                NetFaultKind::Drop {
                    prob,
                    retransmit_ns,
                } => {
                    if net_rng.gen_bool(prob) {
                        extra += retransmit_ns;
                        hits += 1;
                    }
                }
                NetFaultKind::Partition => {
                    stall_until = stall_until.max(f.until_ns);
                    hits += 1;
                }
            }
        }
        st.net_fault_hits += hits;
        stall_until.saturating_sub(now) + extra
    }

    /// Process finished normally.
    pub fn proc_finished(&self, pid: u64) {
        let mut st = self.state.lock();
        self.finish_inner(&mut st, pid);
    }

    /// Process panicked; the panic is re-raised from `run()`.
    pub fn proc_panicked(&self, pid: u64, msg: String) {
        let mut st = self.state.lock();
        let name = st
            .procs
            .get(&pid)
            .map(|p| p.name.clone())
            .unwrap_or_default();
        st.panics.push(format!("process '{name}' panicked: {msg}"));
        self.finish_inner(&mut st, pid);
    }

    fn finish_inner(&self, st: &mut SimState, pid: u64) {
        let p = st.procs.get_mut(&pid).expect("finishing unknown process");
        debug_assert_eq!(p.state, ProcState::Runnable);
        p.state = ProcState::Finished;
        st.runnable -= 1;
        st.live_procs -= 1;
        if st.runnable == 0 {
            self.engine_cv.notify_all();
        }
    }

    /// Advance all flows' remaining work to time `to`.
    fn settle(st: &mut SimState, to: SimTime) {
        debug_assert!(to >= st.last_settle);
        let dt = (to - st.last_settle) as f64 / 1e9;
        if dt > 0.0 {
            // Split borrows: flows and res_done are distinct fields.
            let res_done = &mut st.res_done;
            for f in st.flows.values_mut() {
                let done = f.rate * dt;
                f.remaining = (f.remaining - done).max(0.0);
                for &r in &f.resources {
                    res_done[r as usize] += done;
                }
            }
        }
        st.last_settle = to;
    }

    /// Max-min fair rate allocation (progressive filling), then reschedule
    /// every flow's completion event under its new rate.
    fn recompute(st: &mut SimState, spec: &ClusterSpec) {
        // Collect resources that currently carry flows.
        let mut active_res: Vec<u32> = Vec::new();
        for f in st.flows.values() {
            for &r in &f.resources {
                if st.scratch_nf[r as usize] == 0 {
                    active_res.push(r);
                }
                st.scratch_nf[r as usize] += 1;
            }
        }
        for &r in &active_res {
            st.scratch_cap[r as usize] = spec.capacity(r);
        }

        // Progressive filling: repeatedly find the resource with the lowest
        // fair share, freeze its flows at that rate, subtract.
        let mut unfrozen: std::collections::HashSet<u64> = st.flows.keys().copied().collect();
        let mut frozen_rate: HashMap<u64, f64> = HashMap::with_capacity(st.flows.len());
        while !unfrozen.is_empty() {
            let mut best: Option<(u32, f64)> = None;
            for &r in &active_res {
                let nf = st.scratch_nf[r as usize];
                if nf == 0 {
                    continue;
                }
                let share = (st.scratch_cap[r as usize] / nf as f64).max(0.0);
                if best.is_none_or(|(_, s)| share < s) {
                    best = Some((r, share));
                }
            }
            let Some((bottleneck, share)) = best else {
                break;
            };
            // Freeze all unfrozen flows crossing the bottleneck.
            let flow_ids: Vec<u64> = st.res_flows[bottleneck as usize]
                .iter()
                .copied()
                .filter(|id| unfrozen.contains(id))
                .collect();
            debug_assert!(!flow_ids.is_empty());
            for id in flow_ids {
                unfrozen.remove(&id);
                frozen_rate.insert(id, share);
                let f = &st.flows[&id];
                for &r in &f.resources {
                    st.scratch_cap[r as usize] = (st.scratch_cap[r as usize] - share).max(0.0);
                    st.scratch_nf[r as usize] -= 1;
                }
            }
        }

        // Apply rates and reschedule completions.
        let now = st.now;
        let mut to_push: Vec<(SimTime, EvKind)> = Vec::with_capacity(frozen_rate.len());
        for (&id, f) in st.flows.iter_mut() {
            let rate = frozen_rate.get(&id).copied().unwrap_or(0.0);
            f.rate = rate;
            f.gen += 1;
            let eta = if f.remaining <= 0.0 {
                now
            } else if rate <= 0.0 {
                // Fully starved flow (capacity exhausted by frozen flows due
                // to fp rounding): retry shortly; progressive filling
                // guarantees this cannot persist.
                now + 1_000
            } else {
                now + ((f.remaining / rate) * 1e9).ceil() as u64
            };
            to_push.push((
                eta,
                EvKind::FlowDone {
                    flow: id,
                    gen: f.gen,
                },
            ));
        }
        for (t, k) in to_push {
            Self::push_event(st, t, k);
        }

        // Clear scratch.
        for &r in &active_res {
            st.scratch_nf[r as usize] = 0;
            st.scratch_cap[r as usize] = 0.0;
        }
    }

    fn wake_proc(&self, st: &mut SimState, pid: u64) {
        let p = st.procs.get_mut(&pid).expect("waking unknown process");
        debug_assert!(matches!(p.state, ProcState::Blocked(_)));
        p.state = ProcState::Runnable;
        st.runnable += 1;
        p.parker.unpark();
    }

    /// Is this event still meaningful?
    fn event_valid(st: &SimState, ev: &Ev) -> bool {
        match ev.kind {
            EvKind::FlowDone { flow, gen } => st.flows.get(&flow).is_some_and(|f| f.gen == gen),
            EvKind::Wake { proc, gen } => st
                .procs
                .get(&proc)
                .is_some_and(|p| matches!(p.state, ProcState::Blocked(_)) && p.block_gen == gen),
        }
    }

    /// Run the engine until every process has finished. Panics are collected
    /// from processes and re-raised here. Must be called from a thread that
    /// is *not* a fabric process (typically the test/bench main thread).
    pub fn run(&self) {
        let mut st = self.state.lock();
        assert!(!st.running, "SimCore::run is not reentrant");
        st.running = true;
        loop {
            while st.runnable > 0 {
                self.engine_cv.wait(&mut st);
            }
            if !st.panics.is_empty() || st.live_procs == 0 {
                break;
            }
            // Pop the next valid event.
            let ev = loop {
                match st.events.pop() {
                    None => {
                        let mut msg = String::from(
                            "fabric deadlock: no runnable process and no pending events.\nBlocked processes:\n",
                        );
                        let mut blocked: Vec<_> = st
                            .procs
                            .values()
                            .filter_map(|p| match p.state {
                                ProcState::Blocked(r) => Some(format!(
                                    "  - '{}' on {} blocked on {}\n",
                                    p.name, p.node, r
                                )),
                                _ => None,
                            })
                            .collect();
                        blocked.sort();
                        for b in blocked {
                            msg.push_str(&b);
                        }
                        st.running = false;
                        drop(st);
                        panic!("{msg}");
                    }
                    Some(Reverse(ev)) => {
                        if Self::event_valid(&st, &ev) {
                            break ev;
                        }
                    }
                }
            };
            debug_assert!(ev.time >= st.now, "time must be monotonic");
            Self::settle(&mut st, ev.time);
            st.now = ev.time;
            st.events_processed += 1;
            match ev.kind {
                EvKind::Wake { proc, .. } => self.wake_proc(&mut st, proc),
                EvKind::FlowDone { flow, .. } => {
                    let f = st.flows.remove(&flow).expect("valid event implies flow");
                    debug_assert!(
                        f.remaining <= 1.0,
                        "flow completed with {} units left",
                        f.remaining
                    );
                    for &r in &f.resources {
                        st.res_flows[r as usize].retain(|&x| x != flow);
                    }
                    Self::recompute(&mut st, &self.spec);
                    self.wake_proc(&mut st, f.waiter);
                }
            }
        }
        st.running = false;
        let panics = std::mem::take(&mut st.panics);
        drop(st);
        if !panics.is_empty() {
            panic!("{}", panics.join("\n"));
        }
    }

    pub fn stats(&self) -> FabricStats {
        let st = self.state.lock();
        FabricStats {
            per_resource: st.res_done.clone(),
            transfers: st.transfers,
            flows: st.flows_started,
            bytes_requested: st.bytes_requested,
            events: st.events_processed,
            now_ns: st.now,
            net_fault_hits: st.net_fault_hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ResourceKind;

    fn spawn_raw(
        core: &Arc<SimCore>,
        node: NodeId,
        name: &str,
        f: impl FnOnce(u64, &Parker) + Send + 'static,
    ) {
        let parker = Arc::new(Parker::new());
        let pid = core.register_proc(node, name, parker.clone());
        let core2 = core.clone();
        std::thread::spawn(move || {
            parker.park();
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(pid, &parker)));
            match r {
                Ok(()) => core2.proc_finished(pid),
                Err(e) => {
                    let msg = e
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| e.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "opaque panic".into());
                    core2.proc_panicked(pid, msg);
                }
            }
        });
    }

    #[test]
    fn single_flow_takes_size_over_bandwidth() {
        let spec = ClusterSpec::tiny(2);
        let core = SimCore::new(spec.clone(), 0);
        let bytes = 117_000_000u64; // exactly 1 second at nic_bw
        let tx = spec.resource(NodeId(0), ResourceKind::Tx);
        let rx = spec.resource(NodeId(1), ResourceKind::Rx);
        let done = Arc::new(Mutex::new(0u64));
        let d2 = done.clone();
        let c2 = core.clone();
        spawn_raw(&core, NodeId(0), "xfer", move |pid, parker| {
            c2.flow(pid, parker, &[tx, rx], bytes as f64);
            *d2.lock() = c2.now();
        });
        core.run();
        let t = *done.lock();
        assert!((t as f64 - 1e9).abs() < 2.0e3, "expected ~1e9 ns, got {t}");
    }

    #[test]
    fn two_flows_share_a_tx_link_fairly() {
        let spec = ClusterSpec::tiny(3);
        let core = SimCore::new(spec.clone(), 0);
        let bytes = 117_000_000u64;
        // Both flows leave node 0 -> shared TX -> each gets half the rate.
        let times = Arc::new(Mutex::new(Vec::new()));
        for dst in [1u32, 2u32] {
            let tx = spec.resource(NodeId(0), ResourceKind::Tx);
            let rx = spec.resource(NodeId(dst), ResourceKind::Rx);
            let c2 = core.clone();
            let t2 = times.clone();
            spawn_raw(&core, NodeId(0), "xfer", move |pid, parker| {
                c2.flow(pid, parker, &[tx, rx], bytes as f64);
                t2.lock().push(c2.now());
            });
        }
        core.run();
        for &t in times.lock().iter() {
            assert!(
                (t as f64 - 2e9).abs() < 5.0e3,
                "expected ~2e9 ns (half rate), got {t}"
            );
        }
    }

    #[test]
    fn disjoint_flows_do_not_interfere() {
        let spec = ClusterSpec::tiny(4);
        let core = SimCore::new(spec.clone(), 0);
        let bytes = 117_000_000u64;
        let times = Arc::new(Mutex::new(Vec::new()));
        for (src, dst) in [(0u32, 1u32), (2, 3)] {
            let tx = spec.resource(NodeId(src), ResourceKind::Tx);
            let rx = spec.resource(NodeId(dst), ResourceKind::Rx);
            let c2 = core.clone();
            let t2 = times.clone();
            spawn_raw(&core, NodeId(src), "xfer", move |pid, parker| {
                c2.flow(pid, parker, &[tx, rx], bytes as f64);
                t2.lock().push(c2.now());
            });
        }
        core.run();
        for &t in times.lock().iter() {
            assert!((t as f64 - 1e9).abs() < 2.0e3, "expected ~1e9 ns, got {t}");
        }
    }

    #[test]
    fn sleep_orders_events() {
        let core = SimCore::new(ClusterSpec::tiny(1), 0);
        let order = Arc::new(Mutex::new(Vec::new()));
        for (i, d) in [(0u32, 30u64), (1, 10), (2, 20)] {
            let c2 = core.clone();
            let o2 = order.clone();
            spawn_raw(&core, NodeId(0), "sleeper", move |pid, parker| {
                c2.sleep(pid, parker, d * 1_000_000);
                o2.lock().push(i);
            });
        }
        core.run();
        assert_eq!(*order.lock(), vec![1, 2, 0]);
    }

    #[test]
    fn deterministic_event_counts() {
        let run_once = || {
            let spec = ClusterSpec::tiny(8);
            let core = SimCore::new(spec.clone(), 42);
            for i in 0..6u32 {
                let tx = spec.resource(NodeId(i % 4), ResourceKind::Tx);
                let rx = spec.resource(NodeId((i + 1) % 8), ResourceKind::Rx);
                let c2 = core.clone();
                spawn_raw(&core, NodeId(i % 4), "x", move |pid, parker| {
                    c2.sleep(pid, parker, (i as u64) * 1000);
                    c2.flow(pid, parker, &[tx, rx], 1e6 * (i + 1) as f64);
                });
            }
            core.run();
            let s = core.stats();
            (s.events, s.now_ns)
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    #[should_panic(expected = "panicked: boom")]
    fn process_panics_propagate() {
        let core = SimCore::new(ClusterSpec::tiny(1), 0);
        spawn_raw(&core, NodeId(0), "bomb", |_pid, _parker| panic!("boom"));
        core.run();
    }

    #[test]
    fn stats_account_flow_bytes() {
        let spec = ClusterSpec::tiny(2);
        let core = SimCore::new(spec.clone(), 0);
        let tx = spec.resource(NodeId(0), ResourceKind::Tx);
        let rx = spec.resource(NodeId(1), ResourceKind::Rx);
        let c2 = core.clone();
        spawn_raw(&core, NodeId(0), "xfer", move |pid, parker| {
            c2.flow(pid, parker, &[tx, rx], 5e6);
        });
        core.run();
        let s = core.stats();
        assert!((s.per_resource[tx as usize] - 5e6).abs() < 1.0);
        assert!((s.per_resource[rx as usize] - 5e6).abs() < 1.0);
    }
}
