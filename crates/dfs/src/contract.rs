//! A reusable conformance suite for [`FileSystem`] implementations.
//!
//! Both BSFS and the HDFS baseline must behave identically on the common
//! surface (namespace operations, create/read semantics, rename-based
//! commit); they intentionally differ on `append` support. Each FS crate
//! calls [`exercise_filesystem`] from its tests.

use fabric::{Payload, Proc};

use crate::error::FsError;
use crate::fs::FileSystem;
use crate::path::DfsPath;

fn p(s: &str) -> DfsPath {
    DfsPath::new(s).unwrap()
}

fn bytes(len: usize, tag: u8) -> Payload {
    Payload::from_vec(
        (0..len)
            .map(|i| tag.wrapping_add((i % 247) as u8))
            .collect(),
    )
}

/// Run the common-behaviour suite against `fs`. Panics on any violation.
pub fn exercise_filesystem(fs: &dyn FileSystem, proc_: &Proc) {
    let prc = proc_;

    // --- namespace basics -------------------------------------------------
    fs.mkdirs(prc, &p("/a/b/c")).unwrap();
    assert!(fs.exists(prc, &p("/a/b/c")));
    assert!(fs.status(prc, &p("/a/b")).unwrap().is_dir);
    // mkdirs is idempotent.
    fs.mkdirs(prc, &p("/a/b/c")).unwrap();
    // Root always exists.
    assert!(fs.exists(prc, &DfsPath::root()));
    assert!(matches!(
        fs.status(prc, &p("/nope")),
        Err(FsError::NotFound(_))
    ));

    // --- create / read ----------------------------------------------------
    let data = bytes(10_000, 7);
    fs.write_file(prc, &p("/a/file1"), data.clone()).unwrap();
    let st = fs.status(prc, &p("/a/file1")).unwrap();
    assert!(!st.is_dir);
    assert_eq!(st.len, 10_000);
    let back = fs.read_file(prc, &p("/a/file1")).unwrap();
    assert_eq!(back.fingerprint(), data.fingerprint());

    // create over an existing path fails
    assert!(matches!(
        fs.create(prc, &p("/a/file1")),
        Err(FsError::AlreadyExists(_))
    ));
    // create under a file fails
    assert!(matches!(
        fs.create(prc, &p("/a/file1/child")),
        Err(FsError::NotADirectory(_))
    ));
    // reading a directory fails
    assert!(matches!(
        fs.open(prc, &p("/a/b")),
        Err(FsError::IsADirectory(_))
    ));
    // reading a missing file fails
    assert!(matches!(
        fs.open(prc, &p("/a/missing")),
        Err(FsError::NotFound(_))
    ));

    // --- streaming reads with seek ----------------------------------------
    {
        let mut r = fs.open(prc, &p("/a/file1")).unwrap();
        assert_eq!(r.len(), 10_000);
        let first = r.read(prc, 100).unwrap();
        assert_eq!(first.fingerprint(), data.slice(0, 100).fingerprint());
        r.seek(5_000).unwrap();
        let mid = r.read(prc, 200).unwrap();
        assert_eq!(mid.fingerprint(), data.slice(5_000, 200).fingerprint());
        let tail = r.read_at(prc, 9_900, 100).unwrap();
        assert_eq!(tail.fingerprint(), data.slice(9_900, 100).fingerprint());
        // EOF yields empty payloads.
        r.seek(10_000).unwrap();
        assert!(r.read(prc, 10).unwrap().is_empty());
    }

    // --- list --------------------------------------------------------------
    fs.write_file(prc, &p("/a/file2"), bytes(10, 1)).unwrap();
    let names: Vec<String> = fs
        .list(prc, &p("/a"))
        .unwrap()
        .iter()
        .map(|s| s.path.name().unwrap().to_string())
        .collect();
    assert_eq!(names, vec!["b", "file1", "file2"]);
    assert!(matches!(
        fs.list(prc, &p("/a/file1")),
        Err(FsError::NotADirectory(_))
    ));

    // --- rename (the original Hadoop commit path) --------------------------
    fs.mkdirs(prc, &p("/out")).unwrap();
    fs.rename(prc, &p("/a/file2"), &p("/out/part-0")).unwrap();
    assert!(!fs.exists(prc, &p("/a/file2")));
    assert_eq!(fs.status(prc, &p("/out/part-0")).unwrap().len, 10);
    // rename onto an existing path fails
    assert!(matches!(
        fs.rename(prc, &p("/a/file1"), &p("/out/part-0")),
        Err(FsError::AlreadyExists(_))
    ));
    // directory rename moves the subtree
    fs.rename(prc, &p("/a/b"), &p("/moved")).unwrap();
    assert!(fs.exists(prc, &p("/moved/c")));
    assert!(!fs.exists(prc, &p("/a/b")));

    // --- delete -------------------------------------------------------------
    assert!(matches!(
        fs.delete(prc, &p("/moved"), false),
        Err(FsError::DirectoryNotEmpty(_))
    ));
    assert!(fs.delete(prc, &p("/moved"), true).unwrap());
    assert!(!fs.exists(prc, &p("/moved")));
    assert!(!fs.delete(prc, &p("/moved"), true).unwrap()); // already gone

    // --- file counting (the paper's "file-count problem" metric) -----------
    fs.mkdirs(prc, &p("/count/deep")).unwrap();
    fs.write_file(prc, &p("/count/x"), bytes(1, 2)).unwrap();
    fs.write_file(prc, &p("/count/deep/y"), bytes(1, 2))
        .unwrap();
    assert_eq!(fs.count_files(prc, &p("/count")).unwrap(), 2);

    // --- block locations -----------------------------------------------------
    let bs = fs.default_block_size();
    let big = bytes((2 * bs + bs / 2) as usize, 9);
    fs.write_file(prc, &p("/a/big"), big).unwrap();
    let locs = fs.block_locations(prc, &p("/a/big"), 0, 3 * bs).unwrap();
    assert!(locs.len() >= 3, "expected >=3 blocks, got {}", locs.len());
    assert_eq!(locs[0].offset, 0);
    for l in &locs {
        assert!(!l.hosts.is_empty(), "every block must report hosts");
    }

    // --- append surface ------------------------------------------------------
    if fs.supports_append() {
        let mut w = fs.append(prc, &p("/a/file1")).unwrap();
        w.write(prc, bytes(500, 42)).unwrap();
        w.close(prc).unwrap();
        assert_eq!(fs.status(prc, &p("/a/file1")).unwrap().len, 10_500);
        let tail = fs
            .open(prc, &p("/a/file1"))
            .unwrap()
            .read_at(prc, 10_000, 500)
            .unwrap();
        assert_eq!(tail.fingerprint(), bytes(500, 42).fingerprint());
        // Appending to a missing file fails.
        assert!(matches!(
            fs.append(prc, &p("/a/missing")),
            Err(FsError::NotFound(_))
        ));
    } else {
        assert!(matches!(
            fs.append(prc, &p("/a/file1")),
            Err(FsError::AppendUnsupported { .. })
        ));
    }
}
