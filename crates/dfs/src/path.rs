//! Normalized absolute paths for the DFS namespace.

use std::fmt;

use crate::error::{FsError, FsResult};

/// An absolute, normalized path in a DFS namespace: starts with `/`, no
/// empty/`.`/`..` components, no trailing slash (except the root itself).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DfsPath {
    // Invariant: "/" or "/a/b/c" with validated components.
    repr: String,
}

impl DfsPath {
    /// The root directory `/`.
    pub fn root() -> DfsPath {
        DfsPath { repr: "/".into() }
    }

    /// Parse and normalize. Rejects relative paths, empty components and
    /// `.`/`..` segments.
    pub fn new(s: &str) -> FsResult<DfsPath> {
        if !s.starts_with('/') {
            return Err(FsError::InvalidPath {
                path: s.to_string(),
                reason: "path must be absolute".into(),
            });
        }
        let mut parts = Vec::new();
        for comp in s.split('/') {
            match comp {
                "" => {} // collapse duplicate slashes / leading slash
                "." | ".." => {
                    return Err(FsError::InvalidPath {
                        path: s.to_string(),
                        reason: "'.' and '..' components are not allowed".into(),
                    })
                }
                c => parts.push(c),
            }
        }
        let repr = if parts.is_empty() {
            "/".to_string()
        } else {
            format!("/{}", parts.join("/"))
        };
        Ok(DfsPath { repr })
    }

    /// Child path `self/name`.
    pub fn child(&self, name: &str) -> FsResult<DfsPath> {
        if name.is_empty() || name.contains('/') || name == "." || name == ".." {
            return Err(FsError::InvalidPath {
                path: name.to_string(),
                reason: "invalid child component".into(),
            });
        }
        Ok(if self.is_root() {
            DfsPath {
                repr: format!("/{name}"),
            }
        } else {
            DfsPath {
                repr: format!("{}/{name}", self.repr),
            }
        })
    }

    /// Parent directory; `None` for the root.
    pub fn parent(&self) -> Option<DfsPath> {
        if self.is_root() {
            return None;
        }
        match self.repr.rfind('/') {
            Some(0) => Some(DfsPath::root()),
            Some(i) => Some(DfsPath {
                repr: self.repr[..i].to_string(),
            }),
            None => unreachable!("invariant: absolute"),
        }
    }

    /// Final component; `None` for the root.
    pub fn name(&self) -> Option<&str> {
        if self.is_root() {
            None
        } else {
            self.repr.rsplit('/').next()
        }
    }

    /// True for `/`.
    pub fn is_root(&self) -> bool {
        self.repr == "/"
    }

    /// Path components, root yields an empty iterator.
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.repr.split('/').filter(|c| !c.is_empty())
    }

    /// True when `self` equals `other` or lies underneath it.
    pub fn starts_with(&self, other: &DfsPath) -> bool {
        if other.is_root() {
            return true;
        }
        self.repr == other.repr
            || (self.repr.starts_with(&other.repr)
                && self.repr.as_bytes().get(other.repr.len()) == Some(&b'/'))
    }

    /// String form.
    pub fn as_str(&self) -> &str {
        &self.repr
    }

    /// Rebase `self` from prefix `from` onto prefix `to` (used by rename of
    /// directories).
    pub fn rebase(&self, from: &DfsPath, to: &DfsPath) -> FsResult<DfsPath> {
        if !self.starts_with(from) {
            return Err(FsError::InvalidPath {
                path: self.repr.clone(),
                reason: format!("does not start with {from}"),
            });
        }
        let suffix = &self.repr[from.repr.len()..];
        DfsPath::new(&format!("{}{}", to.repr, suffix))
    }
}

impl fmt::Display for DfsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr)
    }
}

impl std::str::FromStr for DfsPath {
    type Err = FsError;
    fn from_str(s: &str) -> FsResult<DfsPath> {
        DfsPath::new(s)
    }
}

/// Convenience: `path!("/a/b")` panics on malformed literals.
#[macro_export]
macro_rules! path {
    ($s:expr) => {
        $crate::DfsPath::new($s).expect("malformed path literal")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(DfsPath::new("/a//b/").unwrap().as_str(), "/a/b");
        assert_eq!(DfsPath::new("/").unwrap().as_str(), "/");
        assert_eq!(DfsPath::new("///").unwrap().as_str(), "/");
        assert!(DfsPath::new("relative/x").is_err());
        assert!(DfsPath::new("/a/../b").is_err());
        assert!(DfsPath::new("/a/./b").is_err());
    }

    #[test]
    fn family_relations() {
        let p = DfsPath::new("/data/out/part-0").unwrap();
        assert_eq!(p.name(), Some("part-0"));
        assert_eq!(p.parent().unwrap().as_str(), "/data/out");
        assert_eq!(
            DfsPath::new("/x").unwrap().parent().unwrap(),
            DfsPath::root()
        );
        assert!(DfsPath::root().parent().is_none());
        assert_eq!(
            p.components().collect::<Vec<_>>(),
            vec!["data", "out", "part-0"]
        );
    }

    #[test]
    fn prefix_checks_respect_boundaries() {
        let dir = DfsPath::new("/data/out").unwrap();
        assert!(DfsPath::new("/data/out/part-0").unwrap().starts_with(&dir));
        assert!(DfsPath::new("/data/out").unwrap().starts_with(&dir));
        assert!(!DfsPath::new("/data/output").unwrap().starts_with(&dir));
        assert!(DfsPath::new("/anything")
            .unwrap()
            .starts_with(&DfsPath::root()));
    }

    #[test]
    fn child_and_rebase() {
        let dir = DfsPath::new("/a").unwrap();
        assert_eq!(dir.child("b").unwrap().as_str(), "/a/b");
        assert!(dir.child("x/y").is_err());
        assert!(dir.child("").is_err());
        let moved = DfsPath::new("/a/b/c")
            .unwrap()
            .rebase(&DfsPath::new("/a").unwrap(), &DfsPath::new("/z").unwrap())
            .unwrap();
        assert_eq!(moved.as_str(), "/z/b/c");
    }
}
