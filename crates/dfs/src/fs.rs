//! The `FileSystem` trait and its companion types.

use fabric::{NodeId, Payload, Proc};

use crate::error::{FsError, FsResult};
use crate::path::DfsPath;

/// Metadata of a file or directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStatus {
    pub path: DfsPath,
    /// Logical length in bytes (0 for directories).
    pub len: u64,
    pub is_dir: bool,
    /// Block/page size used for this file.
    pub block_size: u64,
}

/// Location of one block of a file — what the jobtracker consumes to place
/// map tasks close to their data (paper §2.2 / §3.2: BlobSeer was extended
/// with "a new primitive that exposes the pages distribution to providers").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockLocation {
    /// Byte offset of the block within the file.
    pub offset: u64,
    /// Length of the block in bytes.
    pub len: u64,
    /// Nodes holding a replica of this block.
    pub hosts: Vec<NodeId>,
}

/// Streaming writer returned by [`FileSystem::create`] / [`FileSystem::append`].
///
/// Writers are sequential; `close` must be called to make the tail of the
/// data visible (both HDFS and BSFS buffer client-side).
pub trait FileWriter: Send {
    /// Append `data` at the writer's current position.
    fn write(&mut self, p: &Proc, data: Payload) -> FsResult<()>;
    /// Flush buffered data and release the handle. Idempotent.
    fn close(&mut self, p: &Proc) -> FsResult<()>;
    /// Bytes accepted through this writer so far.
    fn written(&self) -> u64;
}

/// Streaming reader returned by [`FileSystem::open`].
///
/// Readers observe a *snapshot* of the file as of `open` (BSFS pins the
/// BLOB version; HDFS files are immutable anyway).
pub trait FileReader: Send {
    /// Read up to `len` bytes from the current position; an empty payload
    /// signals end-of-file.
    fn read(&mut self, p: &Proc, len: u64) -> FsResult<Payload>;
    /// Reposition the stream.
    fn seek(&mut self, pos: u64) -> FsResult<()>;
    /// Current position.
    fn pos(&self) -> u64;
    /// Snapshot length of the file at open time.
    fn len(&self) -> u64;
    /// True when the snapshot holds no bytes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Positioned read: `seek(offset)` then read exactly `min(len, remaining)`.
    fn read_at(&mut self, p: &Proc, offset: u64, len: u64) -> FsResult<Payload> {
        self.seek(offset)?;
        let mut parts = Vec::new();
        let mut got = 0;
        while got < len {
            let chunk = self.read(p, len - got)?;
            if chunk.is_empty() {
                break;
            }
            got += chunk.len();
            parts.push(chunk);
        }
        Ok(Payload::concat(&parts))
    }
}

/// The storage-layer interface the Map/Reduce framework programs against —
/// our `org.apache.hadoop.fs.FileSystem`.
///
/// One `FileSystem` value serves clients on any node: operations take the
/// calling process's [`Proc`], whose node identity determines where transfer
/// costs are charged (and enables short-circuit local reads).
pub trait FileSystem: Send + Sync {
    /// Create a new file and open it for writing. Fails with
    /// [`FsError::AlreadyExists`] if the path exists.
    fn create(&self, p: &Proc, path: &DfsPath) -> FsResult<Box<dyn FileWriter>>;

    /// Open an existing file for appending at its end. File systems without
    /// append support return [`FsError::AppendUnsupported`].
    fn append(&self, p: &Proc, path: &DfsPath) -> FsResult<Box<dyn FileWriter>>;

    /// Open a file for reading (snapshot semantics).
    fn open(&self, p: &Proc, path: &DfsPath) -> FsResult<Box<dyn FileReader>>;

    /// Delete a file or directory. Deleting a non-empty directory requires
    /// `recursive`. Returns `true` when something was removed.
    fn delete(&self, p: &Proc, path: &DfsPath, recursive: bool) -> FsResult<bool>;

    /// Atomically rename a file or directory (what the original Hadoop
    /// output committer relies on).
    fn rename(&self, p: &Proc, src: &DfsPath, dst: &DfsPath) -> FsResult<()>;

    /// Create a directory and any missing ancestors.
    fn mkdirs(&self, p: &Proc, path: &DfsPath) -> FsResult<()>;

    /// Metadata for a path.
    fn status(&self, p: &Proc, path: &DfsPath) -> FsResult<FileStatus>;

    /// Children of a directory, sorted by name.
    fn list(&self, p: &Proc, path: &DfsPath) -> FsResult<Vec<FileStatus>>;

    /// Block locations overlapping `[offset, offset+len)`.
    fn block_locations(
        &self,
        p: &Proc,
        path: &DfsPath,
        offset: u64,
        len: u64,
    ) -> FsResult<Vec<BlockLocation>>;

    /// Default block (chunk/page) size of this file system.
    fn default_block_size(&self) -> u64;

    /// Whether `append` is implemented.
    fn supports_append(&self) -> bool;

    /// Short scheme name ("bsfs", "hdfs").
    fn scheme(&self) -> &'static str;

    /// Convenience: does the path exist?
    fn exists(&self, p: &Proc, path: &DfsPath) -> bool {
        self.status(p, path).is_ok()
    }

    /// Append `data` to an existing file as a single atomic unit: no other
    /// concurrent appender's data can interleave *inside* `data`. The
    /// default goes through the buffered writer (which flushes at block
    /// granularity — fine for a single writer); stores with natively atomic
    /// appends of arbitrary size (BSFS) override this so that concurrent
    /// committers never tear each other's records.
    fn append_all(&self, p: &Proc, path: &DfsPath, data: Payload) -> FsResult<()> {
        let mut w = self.append(p, path)?;
        w.write(p, data)?;
        w.close(p)
    }

    /// Convenience: write a whole payload as a new file.
    fn write_file(&self, p: &Proc, path: &DfsPath, data: Payload) -> FsResult<()> {
        let mut w = self.create(p, path)?;
        w.write(p, data)?;
        w.close(p)
    }

    /// Convenience: read a whole file.
    fn read_file(&self, p: &Proc, path: &DfsPath) -> FsResult<Payload> {
        let mut r = self.open(p, path)?;
        let len = r.len();
        if len == 0 {
            return Ok(Payload::empty());
        }
        r.read_at(p, 0, len)
    }

    /// Convenience: number of *files* (not directories) under `path`,
    /// recursively. Used to quantify the paper's "file-count problem".
    fn count_files(&self, p: &Proc, path: &DfsPath) -> FsResult<u64> {
        let st = self.status(p, path)?;
        if !st.is_dir {
            return Ok(1);
        }
        let mut n = 0;
        for child in self.list(p, path)? {
            if child.is_dir {
                n += self.count_files(p, &child.path)?;
            } else {
                n += 1;
            }
        }
        Ok(n)
    }
}

impl std::fmt::Debug for dyn FileSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FileSystem({})", self.scheme())
    }
}

#[allow(unused)]
fn assert_object_safe(_: &dyn FileSystem, _: &dyn FileWriter, _: &dyn FileReader) {}

#[allow(unused)]
fn assert_error_usable() -> FsError {
    FsError::HandleClosed
}
