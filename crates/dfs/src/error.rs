//! File-system error vocabulary.

use std::fmt;

use crate::path::DfsPath;

/// Errors surfaced by [`crate::FileSystem`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path does not exist.
    NotFound(DfsPath),
    /// Create on an existing path, or rename onto an occupied destination.
    AlreadyExists(DfsPath),
    /// A directory operation hit a file (or an ancestor component is a file).
    NotADirectory(DfsPath),
    /// A file operation hit a directory.
    IsADirectory(DfsPath),
    /// The file system does not implement `append` — what stock HDFS of the
    /// paper's era returns (§2.1: "shortly after being introduced, append
    /// support was disabled").
    AppendUnsupported { fs: &'static str },
    /// Single-writer lease violation (HDFS semantics: no concurrent writers).
    LeaseConflict(DfsPath),
    /// Deleting a non-empty directory without `recursive`.
    DirectoryNotEmpty(DfsPath),
    /// Operation on a closed handle.
    HandleClosed,
    /// Malformed path.
    InvalidPath { path: String, reason: String },
    /// Misaligned write/append for a store that requires alignment.
    Unaligned { detail: String },
    /// Error bubbled up from the storage substrate.
    Storage(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            FsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            FsError::AppendUnsupported { fs } => {
                write!(f, "{fs} does not support the append operation")
            }
            FsError::LeaseConflict(p) => {
                write!(f, "file is already open for writing (lease conflict): {p}")
            }
            FsError::DirectoryNotEmpty(p) => write!(f, "directory not empty: {p}"),
            FsError::HandleClosed => write!(f, "operation on closed file handle"),
            FsError::InvalidPath { path, reason } => write!(f, "invalid path '{path}': {reason}"),
            FsError::Unaligned { detail } => write!(f, "unaligned access: {detail}"),
            FsError::Storage(msg) => write!(f, "storage layer error: {msg}"),
        }
    }
}

impl std::error::Error for FsError {}

pub type FsResult<T> = std::result::Result<T, FsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let p = DfsPath::new("/a/b").unwrap();
        assert!(FsError::NotFound(p.clone()).to_string().contains("/a/b"));
        assert!(FsError::AppendUnsupported { fs: "hdfs" }
            .to_string()
            .contains("append"));
        assert!(FsError::LeaseConflict(p).to_string().contains("lease"));
    }
}
