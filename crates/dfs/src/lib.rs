//! `dfs` — the distributed-file-system API shared by BSFS and the HDFS
//! baseline.
//!
//! The Hadoop Map/Reduce framework "accesses the storage layer through an
//! interface that exposes the basic functions of a file system" (paper §3.2);
//! swapping HDFS for BSFS is possible precisely because both implement that
//! interface. This crate is our equivalent of
//! `org.apache.hadoop.fs.FileSystem`:
//!
//! * [`FileSystem`] — create/open/append/rename/delete/mkdirs/list/status
//!   plus [`FileSystem::block_locations`], the primitive the jobtracker uses
//!   for data-location-aware scheduling;
//! * [`FileWriter`] / [`FileReader`] — streaming handles;
//! * [`DfsPath`] — normalized absolute paths;
//! * [`FsError`] — the error vocabulary (including
//!   [`FsError::AppendUnsupported`], which is exactly what stock HDFS returns
//!   and what motivates the paper).
//!
//! Notably, `append` is *in* the interface — as the paper observes, the
//! operation was present in Hadoop's `FileSystem` API but unimplemented in
//! the HDFS release of the time. Our HDFS baseline faithfully rejects it;
//! BSFS implements it.

pub mod contract;
mod error;
mod fs;
mod path;

pub use error::{FsError, FsResult};
pub use fs::{BlockLocation, FileReader, FileStatus, FileSystem, FileWriter};
pub use path::DfsPath;
