//! Root-level integration tests spanning every crate: the complete paper
//! pipeline (workload generator → MapReduce → BSFS → BlobSeer → fabric) in
//! one process, plus whole-stack determinism and failure injection.

use std::sync::Arc;

use blobseer_repro::testbed;
use dfs::{DfsPath, FileSystem};
use fabric::{ClusterSpec, Fabric, NodeId, Payload, Proc};
use mapreduce::{JobConf, MrCluster, MrConfig, OutputMode};

fn d(s: &str) -> DfsPath {
    DfsPath::new(s).unwrap()
}

/// The full paper scenario at miniature scale with REAL bytes, in the
/// deterministic simulator: generate Last.fm-like inputs, run the data join
/// with shared-append output on BSFS, verify against the oracle and check
/// the file count.
fn full_stack_run(seed: u64) -> (Vec<String>, u64, u64) {
    let fx = Fabric::sim_seeded(ClusterSpec::tiny(12), seed);
    let bsfs = bsfs::Bsfs::deploy(
        &fx,
        blobseer::BlobSeerConfig::test_small(2048),
        blobseer::Layout::compact(fx.spec()),
    )
    .unwrap();
    let fs: Arc<dyn FileSystem> = Arc::new(bsfs);
    let mr = MrCluster::start(&fx, fs.clone(), MrConfig::compact(fx.spec()));
    let fs2 = fs.clone();
    let mr2 = mr.clone();
    let h = fx.spawn(NodeId(0), "driver", move |p: &Proc| {
        let spec = workloads::lastfm::LastFmSpec {
            records_a: 400,
            records_b: 300,
            distinct_keys: 80,
            overlap: 0.5,
            seed: 11,
        };
        let (a, b) = workloads::lastfm::write_inputs(&*fs2, p, &d("/in"), &spec).unwrap();
        let job = JobConf {
            name: "join".into(),
            inputs: vec![a, b],
            output_dir: d("/out"),
            num_reducers: 3,
            output_mode: OutputMode::SharedAppendFile,
            user: workloads::datajoin::user_fns(),
            ghost: None,
            shuffle: mapreduce::ShuffleTuning::default(),
        };
        let result = mr2.submit(job).wait(p);
        let out = fs2.read_file(p, &d("/out/result")).unwrap();
        mr2.shutdown();
        (out.bytes().to_vec(), result.output_files)
    });
    fx.run();
    let (bytes, files) = h.take().unwrap();
    let mut lines: Vec<String> = bytes
        .split(|&b| b == b'\n')
        .filter(|l| !l.is_empty())
        .map(|l| String::from_utf8(l.to_vec()).unwrap())
        .collect();
    lines.sort();
    let events = fx.stats().events;
    (lines, files, events)
}

#[test]
fn whole_paper_pipeline_matches_oracle() {
    let (lines, files, _) = full_stack_run(99);
    let spec = workloads::lastfm::LastFmSpec {
        records_a: 400,
        records_b: 300,
        distinct_keys: 80,
        overlap: 0.5,
        seed: 11,
    };
    let oracle = workloads::datajoin::reference_join(
        &workloads::lastfm::generate(&spec, 0),
        &workloads::lastfm::generate(&spec, 1),
    );
    assert!(!oracle.is_empty());
    assert_eq!(lines, oracle);
    assert_eq!(files, 1);
}

#[test]
fn whole_stack_simulation_is_deterministic() {
    // Same seed -> byte-identical results AND identical event counts; the
    // virtual experiment is exactly reproducible.
    let a = full_stack_run(1234);
    let b = full_stack_run(1234);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2, "event counts must match exactly");
}

#[test]
fn replicated_bsfs_survives_provider_loss_under_mapreduce() {
    // Kill a provider mid-workflow: with replication 2, the job's input
    // remains readable and the job completes.
    let fx = Fabric::sim(ClusterSpec::tiny(10));
    let bsfs = bsfs::Bsfs::deploy(
        &fx,
        blobseer::BlobSeerConfig::test_small(1024).with_replication(2),
        blobseer::Layout::compact(fx.spec()),
    )
    .unwrap();
    let store = bsfs.store().clone();
    let fs: Arc<dyn FileSystem> = Arc::new(bsfs);
    let mr = MrCluster::start(&fx, fs.clone(), MrConfig::compact(fx.spec()));
    let fs2 = fs.clone();
    let mr2 = mr.clone();
    let h = fx.spawn(NodeId(0), "driver", move |p: &Proc| {
        let text: String = (0..500)
            .map(|i| format!("w{} common words\n", i % 7))
            .collect();
        fs2.write_file(p, &d("/in/text"), Payload::from_vec(text.into_bytes()))
            .unwrap();
        // Take down one provider before the job runs.
        store
            .inject(blobseer::FaultTarget::Provider(3), blobseer::Fault::Crash)
            .unwrap();
        let job = JobConf {
            name: "wc-under-failure".into(),
            inputs: vec![d("/in/text")],
            output_dir: d("/out"),
            num_reducers: 2,
            output_mode: OutputMode::SharedAppendFile,
            user: workloads::wordcount::user_fns(),
            ghost: None,
            shuffle: mapreduce::ShuffleTuning::default(),
        };
        let result = mr2.submit(job).wait(p);
        let out = fs2
            .read_file(p, &d("/out/result"))
            .unwrap()
            .bytes()
            .to_vec();
        mr2.shutdown();
        (result.output_files, out)
    });
    fx.run();
    let (files, out) = h.take().unwrap();
    assert_eq!(files, 1);
    assert!(!out.is_empty());
    let text = String::from_utf8(out).unwrap();
    assert!(text.lines().any(|l| l.starts_with("common\t500")));
}

#[test]
fn live_and_sim_modes_agree_on_results() {
    // The same functional scenario produces identical data in live and sim
    // modes (timing differs; bytes must not).
    let run = |fx: Fabric| -> u64 {
        // Bsfs::deploy handles both sim and live fabrics; the scenario is
        // identical either way.
        let fsb = bsfs::Bsfs::deploy(
            &fx,
            blobseer::BlobSeerConfig::test_small(256),
            blobseer::Layout::compact(fx.spec()),
        )
        .unwrap();
        let h = fx.spawn(NodeId(0), "driver", move |p: &Proc| {
            let path = d("/data");
            let mut w = fsb.create(p, &path).unwrap();
            for i in 0..50u32 {
                w.write(
                    p,
                    Payload::from_vec(format!("record-{i:04}\n").into_bytes()),
                )
                .unwrap();
            }
            w.close(p).unwrap();
            fsb.append_all(p, &path, Payload::from("tail\n")).unwrap();
            fsb.read_file(p, &path).unwrap().fingerprint()
        });
        fx.run();
        h.take().unwrap()
    };
    let sim = run(Fabric::sim(ClusterSpec::tiny(4)));
    let live = run(Fabric::live(ClusterSpec::tiny(4)));
    assert_eq!(sim, live);
}

#[test]
fn testbed_helpers_build_working_worlds() {
    let (fx, fs) = testbed::live_bsfs(3, 1024);
    let h = fx.spawn(NodeId(0), "driver", move |p: &Proc| {
        fs.write_file(p, &d("/x"), Payload::from("hello")).unwrap();
        assert!(fs.supports_append());
        fs.status(p, &d("/x")).unwrap().len
    });
    fx.run();
    assert_eq!(h.take().unwrap(), 5);

    let (fx, fs) = testbed::live_hdfs(3, 1024);
    let h = fx.spawn(NodeId(0), "driver", move |p: &Proc| {
        fs.write_file(p, &d("/x"), Payload::from("hello")).unwrap();
        assert!(!fs.supports_append());
        fs.status(p, &d("/x")).unwrap().len
    });
    fx.run();
    assert_eq!(h.take().unwrap(), 5);
}
