//! Smoke tests for the `blobseer_repro::testbed` builders that every
//! `examples/` program starts from. Each test constructs the exact world the
//! corresponding example builds (same builder, same node count, same block
//! size) and drives one trivial end-to-end op through it, on both the BSFS
//! and the HDFS-sim stacks — so an example can never rot silently because a
//! testbed builder broke.

use std::sync::Arc;

use blobseer_repro::testbed;
use dfs::{DfsPath, FileSystem};
use fabric::{NodeId, Payload};
use mapreduce::{JobConf, OutputMode};

fn p(s: &str) -> DfsPath {
    DfsPath::new(s).unwrap()
}

/// `examples/quickstart.rs`: live BSFS, 4 nodes, 4 KB blocks.
#[test]
fn quickstart_testbed_builds_and_appends() {
    let (fx, fs) = testbed::live_bsfs(4, 4096);
    let fs2 = fs.clone();
    fx.spawn(NodeId(0), "smoke", move |pr| {
        let path = p("/smoke/log.txt");
        fs2.write_file(pr, &path, Payload::from("first\n")).unwrap();
        // The op the paper adds to the Hadoop world: append.
        assert!(fs2.supports_append());
        fs2.append_all(pr, &path, Payload::from("second\n"))
            .unwrap();
        let got = fs2.read_file(pr, &path).unwrap();
        assert_eq!(got.bytes().as_ref(), b"first\nsecond\n");
    });
    fx.run();
}

/// `examples/concurrent_log.rs`: live BSFS, 6 nodes, 64 KB blocks.
#[test]
fn concurrent_log_testbed_supports_two_appenders() {
    let (fx, fs) = testbed::live_bsfs(6, 1 << 16);
    // Create the shared log first, as the example does (append requires an
    // existing file).
    let fs2 = fs.clone();
    let setup = fx.spawn(NodeId(0), "setup", move |pr| {
        let mut w = fs2.create(pr, &p("/smoke/shared.log")).unwrap();
        w.close(pr).unwrap();
    });
    // take() is non-blocking; run() is the barrier that waits for setup.
    fx.run();
    setup.take().unwrap();
    for w in 0..2u32 {
        let fs2 = fs.clone();
        fx.spawn(NodeId(w), format!("appender-{w}"), move |pr| {
            let path = p("/smoke/shared.log");
            fs2.append_all(pr, &path, Payload::from_vec(vec![b'a' + w as u8; 8]))
                .unwrap();
        });
    }
    fx.run();
    let fs2 = fs.clone();
    let fx2 = fx.clone();
    fx2.spawn(NodeId(0), "checker", move |pr| {
        let got = fs2.read_file(pr, &p("/smoke/shared.log")).unwrap();
        // Both appends landed, atomically, in some order.
        assert_eq!(got.len(), 16);
    });
    fx2.run();
}

/// `examples/wordcount.rs`: live BSFS (6 nodes, tiny blocks) plus a
/// Map/Reduce cluster; runs a minimal job end to end.
#[test]
fn wordcount_testbed_runs_a_tiny_job() {
    let (fx, bsfs) = testbed::live_bsfs(6, 128);
    let fs: Arc<dyn FileSystem> = Arc::new(bsfs);
    let mr = testbed::live_mapreduce(&fx, fs.clone());
    let fs2 = fs.clone();
    let mr2 = mr.clone();
    fx.spawn(NodeId(0), "driver", move |pr| {
        let input = p("/in/tiny.txt");
        fs2.write_file(pr, &input, Payload::from("to be or not to be\n"))
            .unwrap();
        let job = JobConf {
            name: "smoke-wordcount".into(),
            inputs: vec![input],
            output_dir: p("/out"),
            num_reducers: 1,
            output_mode: OutputMode::SharedAppendFile,
            user: workloads::wordcount::user_fns(),
            ghost: None,
            shuffle: mapreduce::ShuffleTuning::default(),
        };
        let result = mr2.submit(job).wait(pr);
        assert_eq!(result.output_files, 1, "shared-append mode => one file");
        let out = fs2.read_file(pr, &p("/out/result")).unwrap();
        let text = String::from_utf8(out.bytes().to_vec()).unwrap();
        assert!(text.lines().any(|l| l == "to\t2"), "bad output:\n{text}");
        mr2.shutdown();
    });
    fx.run();
}

/// `examples/pipeline.rs`: live BSFS (8 nodes, 512 B blocks) plus a
/// Map/Reduce cluster over it.
#[test]
fn pipeline_testbed_starts_mr_over_bsfs() {
    let (fx, bsfs) = testbed::live_bsfs(8, 512);
    let fs: Arc<dyn FileSystem> = Arc::new(bsfs);
    let mr = testbed::live_mapreduce(&fx, fs.clone());
    let fs2 = fs.clone();
    let mr2 = mr.clone();
    fx.spawn(NodeId(0), "driver", move |pr| {
        // Trivial op through the same fs handle the MR cluster uses.
        let path = p("/stage0/data");
        fs2.write_file(pr, &path, Payload::from("x\ty\n")).unwrap();
        assert!(fs2.exists(pr, &path));
        mr2.shutdown();
    });
    fx.run();
}

/// `examples/datajoin.rs`: one live HDFS-sim world and one live BSFS world,
/// both 8 nodes / 4 KB blocks — the two stacks the paper compares.
#[test]
fn datajoin_testbeds_cover_both_stacks() {
    let (fx1, hdfs) = testbed::live_hdfs(8, 4096);
    fx1.spawn(NodeId(0), "hdfs-smoke", move |pr| {
        // HDFS 0.20 semantics: write-once works, append is refused.
        assert!(!hdfs.supports_append());
        let path = p("/smoke/part-0");
        hdfs.write_file(pr, &path, Payload::from("hdfs\n")).unwrap();
        assert_eq!(
            hdfs.read_file(pr, &path).unwrap().bytes().as_ref(),
            b"hdfs\n"
        );
        assert!(hdfs.append(pr, &path).is_err());
    });
    fx1.run();

    let (fx2, bsfs) = testbed::live_bsfs(8, 4096);
    fx2.spawn(NodeId(0), "bsfs-smoke", move |pr| {
        let path = p("/smoke/result");
        bsfs.write_file(pr, &path, Payload::from("bsfs\n")).unwrap();
        bsfs.append_all(pr, &path, Payload::from("more\n")).unwrap();
        assert_eq!(
            bsfs.read_file(pr, &path).unwrap().bytes().as_ref(),
            b"bsfs\nmore\n"
        );
    });
    fx2.run();
}
