//! The paper's §5 future-work scenario, live: two Map/Reduce stages in a
//! pipeline over one shared BSFS file. Stage 1's reducers append their
//! output while stage 2's consumer reads the already-published prefix of
//! the same file concurrently — possible only because versioning isolates
//! readers from appenders (Figures 4/5).
//!
//! Run with: `cargo run --release --example pipeline`

use std::sync::Arc;

use blobseer_repro::testbed;
use dfs::{DfsPath, FileSystem};
use fabric::{NodeId, Payload, MILLIS};
use mapreduce::{JobConf, OutputMode};

fn main() {
    let (fx, bsfs) = testbed::live_bsfs(8, 512);
    let fs: Arc<dyn FileSystem> = Arc::new(bsfs);
    let mr = testbed::live_mapreduce(&fx, fs.clone());

    // Stage 1: wordcount whose reducers append to /stage1/result.
    let corpus: String = (0..200)
        .map(|i| format!("line {i} with some shared words alpha beta gamma\n"))
        .collect();
    let expected_words = workloads::wordcount::reference_counts(&corpus).len();

    let fs2 = fs.clone();
    let mr2 = mr.clone();
    let stage1 = fx.spawn(NodeId(0), "stage1", move |p| {
        let input = DfsPath::new("/in/corpus").unwrap();
        fs2.write_file(p, &input, Payload::from_vec(corpus.into_bytes()))
            .unwrap();
        let job = JobConf {
            name: "stage1-wordcount".into(),
            inputs: vec![input],
            output_dir: DfsPath::new("/stage1").unwrap(),
            num_reducers: 4,
            output_mode: OutputMode::SharedAppendFile,
            user: workloads::wordcount::user_fns(),
            ghost: None,
            shuffle: mapreduce::ShuffleTuning::default(),
        };
        let r = mr2.submit(job).wait(p);
        println!(
            "stage 1 finished: {} reducers appended {} bytes into ONE file",
            r.reduces, r.reduce_output_bytes
        );
        r.reduce_output_bytes
    });

    // Stage 2 consumer: tails /stage1/result WHILE stage 1 runs, counting
    // lines of the join of both stages' lifetimes.
    let fs3 = fs.clone();
    let consumer = fx.spawn(NodeId(7), "stage2-consumer", move |p| {
        let out = DfsPath::new("/stage1/result").unwrap();
        let mut consumed = 0u64;
        let mut lines = 0u64;
        let mut polls_while_growing = 0u32;
        loop {
            match fs3.status(p, &out) {
                Ok(st) if st.len > consumed => {
                    let mut r = fs3.open(p, &out).unwrap();
                    let chunk = r.read_at(p, consumed, st.len - consumed).unwrap();
                    lines += chunk.bytes().iter().filter(|&&b| b == b'\n').count() as u64;
                    consumed = st.len;
                    polls_while_growing += 1;
                }
                _ => {}
            }
            if stage1_done() && fs3.status(p, &out).map(|s| s.len).unwrap_or(0) == consumed {
                break;
            }
            p.sleep(2 * MILLIS);
        }
        println!(
            "stage 2 consumed {consumed} bytes / {lines} records in {polls_while_growing} \
             incremental rounds, overlapping stage 1"
        );
        lines
    });

    // Poor-man's completion flag shared through a static (examples keep it
    // simple; library code uses gates).
    use std::sync::atomic::{AtomicBool, Ordering};
    static DONE: AtomicBool = AtomicBool::new(false);
    fn stage1_done() -> bool {
        DONE.load(Ordering::SeqCst)
    }

    // Main thread: wait for stage 1's process, then raise the flag and let
    // the consumer drain, then shut the framework down.
    let bytes = loop {
        if let Some(b) = stage1.take() {
            break b;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    DONE.store(true, Ordering::SeqCst);
    let lines = loop {
        if let Some(l) = consumer.take() {
            break l;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    mr.shutdown();
    fx.run();
    assert_eq!(
        lines as usize, expected_words,
        "stage 2 must see every stage-1 output record exactly once"
    );
    println!(
        "pipeline done: stage 2 processed all {lines} records ({bytes} bytes) concurrently with \
         stage 1 — the paper's §5 scenario."
    );
}
