//! The paper's §4.3 experiment in miniature, on live in-process clusters
//! with real bytes: run the data join application twice —
//!
//!   1. original Hadoop on HDFS (each reducer writes its own file),
//!   2. modified Hadoop on BSFS (all reducers append to one shared file),
//!
//! then verify both computed exactly the same join and compare what they
//! left in the output directory.
//!
//! Run with: `cargo run --release --example datajoin`

use std::sync::Arc;

use blobseer_repro::testbed;
use dfs::{DfsPath, FileSystem};
use fabric::{Fabric, NodeId};
use mapreduce::{JobConf, MrCluster, OutputMode};
use workloads::lastfm::{self, LastFmSpec};

const REDUCERS: u32 = 4;

fn spec() -> LastFmSpec {
    LastFmSpec {
        records_a: 600,
        records_b: 500,
        distinct_keys: 120,
        overlap: 0.6,
        seed: 7,
    }
}

fn run(fx: &Fabric, fs: Arc<dyn FileSystem>, mode: OutputMode) -> (Vec<String>, u64, f64) {
    let mr = MrCluster::start(
        fx,
        fs.clone(),
        mapreduce::MrConfig::compact(fx.spec()).with_heartbeat_ns(2 * fabric::MILLIS),
    );
    let fs2 = fs.clone();
    let mr2 = mr.clone();
    let h = fx.spawn(NodeId(0), "driver", move |p| {
        let dir = DfsPath::new("/in").unwrap();
        let (a, b) = lastfm::write_inputs(&*fs2, p, &dir, &spec()).unwrap();
        let job = JobConf {
            name: format!("datajoin-{}", mode.label()),
            inputs: vec![a, b],
            output_dir: DfsPath::new("/out").unwrap(),
            num_reducers: REDUCERS,
            output_mode: mode,
            user: workloads::datajoin::user_fns(),
            ghost: None,
            shuffle: mapreduce::ShuffleTuning::default(),
        };
        let result = mr2.submit(job).wait(p);
        // Gather every output line.
        let mut text = Vec::new();
        for st in fs2.list(p, &DfsPath::new("/out").unwrap()).unwrap() {
            if !st.is_dir {
                text.extend_from_slice(fs2.read_file(p, &st.path).unwrap().bytes());
            }
        }
        mr2.shutdown();
        let mut lines: Vec<String> = text
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .map(|l| String::from_utf8(l.to_vec()).unwrap())
            .collect();
        lines.sort();
        (lines, result.output_files, result.elapsed_secs())
    });
    fx.run();
    h.take().unwrap()
}

fn main() {
    // Scenario 1: original Hadoop + HDFS.
    let (fx1, hdfs) = testbed::live_hdfs(8, 4096);
    let (hdfs_lines, hdfs_files, hdfs_secs) =
        run(&fx1, Arc::new(hdfs), OutputMode::PerReducerFiles);
    println!(
        "HDFS  + per-reducer files : {} join rows, {} output files, {:.0} ms",
        hdfs_lines.len(),
        hdfs_files,
        hdfs_secs * 1e3
    );

    // Scenario 2: modified Hadoop + BSFS.
    let (fx2, bsfs) = testbed::live_bsfs(8, 4096);
    let (bsfs_lines, bsfs_files, bsfs_secs) =
        run(&fx2, Arc::new(bsfs), OutputMode::SharedAppendFile);
    println!(
        "BSFS  + shared append     : {} join rows, {} output file,  {:.0} ms",
        bsfs_lines.len(),
        bsfs_files,
        bsfs_secs * 1e3
    );

    // Same join either way, and the oracle agrees.
    assert_eq!(
        hdfs_lines, bsfs_lines,
        "both modes must compute the same join"
    );
    let oracle = workloads::datajoin::reference_join(
        &lastfm::generate(&spec(), 0),
        &lastfm::generate(&spec(), 1),
    );
    assert_eq!(bsfs_lines, oracle, "framework output must match the oracle");
    assert_eq!(hdfs_files, REDUCERS as u64);
    assert_eq!(bsfs_files, 1);
    println!(
        "identical results — but HDFS left {hdfs_files} part-files to manage while BSFS left a \
         single ready-to-use file (the paper's point)."
    );
}
