//! The HBase scenario from the paper's §2.1: many producers keep a single
//! ever-growing transaction log in the DFS, appending concurrently, while a
//! consumer tails it — "an application may need to manage a log that is
//! simultaneously and continuously being read from/appended to" (§5).
//!
//! Four producers append batches of log records to ONE shared file; a
//! tailing consumer re-opens the file (pinning each published snapshot) and
//! prints progress. On HDFS this program cannot exist.
//!
//! Run with: `cargo run --release --example concurrent_log`

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use blobseer_repro::testbed;
use dfs::{DfsPath, FileSystem};
use fabric::{NodeId, Payload, MILLIS};

const PRODUCERS: u32 = 4;
const BATCHES: u32 = 10;

fn main() {
    let (fx, fs) = testbed::live_bsfs(6, 1 << 16);
    let log = DfsPath::new("/wal/transactions.log").unwrap();

    // Create the shared log.
    {
        let fs2 = fs.clone();
        let log2 = log.clone();
        fx.spawn(NodeId(0), "setup", move |p| {
            let mut w = fs2.create(p, &log2).unwrap();
            w.close(p).unwrap();
        })
        .take();
    }
    std::thread::sleep(std::time::Duration::from_millis(50));

    let live = Arc::new(AtomicU32::new(PRODUCERS));
    for prod in 0..PRODUCERS {
        let fs2 = fs.clone();
        let log2 = log.clone();
        let live2 = live.clone();
        fx.spawn(NodeId(1 + prod), format!("producer-{prod}"), move |p| {
            for batch in 0..BATCHES {
                let mut records = String::new();
                for i in 0..20 {
                    records.push_str(&format!(
                        "txn producer={prod} batch={batch} seq={i} op=put\n"
                    ));
                }
                // One atomic append per batch: other producers' batches can
                // interleave BETWEEN batches but never inside one.
                fs2.append_all(p, &log2, Payload::from_vec(records.into_bytes()))
                    .unwrap();
                p.sleep(3 * MILLIS);
            }
            live2.fetch_sub(1, Ordering::SeqCst);
        });
    }

    // The tailing consumer: reopen to see each newly published snapshot.
    let fs3 = fs.clone();
    let log3 = log.clone();
    let live3 = live.clone();
    fx.spawn(NodeId(5), "consumer", move |p| {
        let mut consumed: u64 = 0;
        let mut lines: u64 = 0;
        loop {
            let len = fs3.status(p, &log3).unwrap().len;
            if len > consumed {
                let mut r = fs3.open(p, &log3).unwrap();
                let chunk = r.read_at(p, consumed, len - consumed).unwrap();
                let new_lines = chunk.bytes().iter().filter(|&&b| b == b'\n').count() as u64;
                lines += new_lines;
                consumed = len;
                println!("consumer: +{new_lines:>3} records (total {lines}, {consumed} bytes)");
            } else if live3.load(Ordering::SeqCst) == 0 {
                break;
            } else {
                p.sleep(2 * MILLIS);
            }
        }
        let expected = (PRODUCERS * BATCHES * 20) as u64;
        println!(
            "consumer: drained {lines} records (expected {expected}) — every batch arrived intact"
        );
        assert_eq!(lines, expected);
    });

    fx.run();
    println!("concurrent_log done: one shared log file, {PRODUCERS} writers, one tailing reader.");
}
