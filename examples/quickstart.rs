//! Quickstart: deploy a live in-process BSFS cluster, exercise the API the
//! paper adds to the Hadoop world — including `append` — and peek at the
//! versioning underneath.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Set `QUICKSTART_PERSIST_DIR=/some/dir` to deploy the durable storage
//! plane instead: every service persists to a pstore directory, and the
//! demo kills a provider mid-session and restarts it from disk.

use blobseer::{Fault, FaultTarget};
use blobseer_repro::testbed;
use dfs::{DfsPath, FileSystem};
use fabric::{NodeId, Payload};

fn main() {
    // 4 logical nodes, 4 KB blocks (small so the output is interesting).
    let persist_dir = std::env::var_os("QUICKSTART_PERSIST_DIR").map(std::path::PathBuf::from);
    let (fx, fs) = match &persist_dir {
        Some(dir) => testbed::live_bsfs_persistent(4, 4096, dir),
        None => testbed::live_bsfs(4, 4096),
    };
    let persistent = persist_dir.is_some();
    let fs2 = fs.clone();
    fx.spawn(NodeId(0), "quickstart", move |p| {
        let path = DfsPath::new("/demo/log.txt").unwrap();

        // Create a file and write some data.
        let mut w = fs2.create(p, &path).unwrap();
        w.write(p, Payload::from("first line\n")).unwrap();
        w.write(p, Payload::from("second line\n")).unwrap();
        w.close(p).unwrap();
        println!(
            "created {path} ({} bytes)",
            fs2.status(p, &path).unwrap().len
        );

        // Append — the operation HDFS of the era refused.
        fs2.append_all(p, &path, Payload::from("appended line\n"))
            .unwrap();
        println!(
            "appended; file is now {} bytes",
            fs2.status(p, &path).unwrap().len
        );

        // Read it back.
        let content = fs2.read_file(p, &path).unwrap();
        print!(
            "--- {path} ---\n{}",
            String::from_utf8_lossy(content.bytes())
        );

        // Versioning: the BLOB behind the file keeps every snapshot.
        let blob = fs2.blob_of(p, &path).unwrap();
        let client = fs2.store().client();
        let latest = client.latest(p, blob).unwrap();
        println!("--- BLOB {blob} has {latest} published versions ---");
        for v in 1..=latest {
            let size = client.size(p, blob, Some(v)).unwrap();
            println!("  version {v}: {size} bytes");
        }

        // Block locations: what the Map/Reduce scheduler uses for locality.
        for loc in fs2.block_locations(p, &path, 0, 1 << 20).unwrap() {
            println!(
                "  block @{:>5} ({} B) on {:?}",
                loc.offset,
                loc.len,
                loc.hosts.iter().map(|h| h.0).collect::<Vec<_>>()
            );
        }
        // On the durable plane, prove the recovery path: kill provider 0
        // (it loses every in-memory page), restart it from its pstore
        // directory, and re-read the file through the healed deployment.
        if persistent {
            let bs = fs2.store();
            bs.inject(FaultTarget::Provider(0), Fault::CrashRestart)
                .unwrap();
            bs.heal(FaultTarget::Provider(0)).unwrap();
            let again = fs2.read_file(p, &path).unwrap();
            assert_eq!(
                again.bytes(),
                content.bytes(),
                "file changed across provider restart"
            );
            println!(
                "provider 0 died, restarted from its pstore directory ({} recovery), file intact",
                bs.providers()[0].recoveries()
            );
        }
        println!("quickstart done.");
    });
    fx.run();
}
