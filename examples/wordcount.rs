//! Run a real Map/Reduce wordcount over a live BSFS deployment with the
//! paper's modification: all reducers append to ONE shared output file.
//!
//! Run with: `cargo run --release --example wordcount`

use std::sync::Arc;

use blobseer_repro::testbed;
use dfs::{DfsPath, FileSystem};
use fabric::{NodeId, Payload};
use mapreduce::{JobConf, OutputMode};

const TEXT: &str = "\
to be or not to be that is the question
whether tis nobler in the mind to suffer
the slings and arrows of outrageous fortune
or to take arms against a sea of troubles
and by opposing end them to die to sleep
no more and by a sleep to say we end
the heart ache and the thousand natural shocks
that flesh is heir to tis a consummation
devoutly to be wished to die to sleep
";

fn main() {
    let (fx, bsfs) = testbed::live_bsfs(6, 128);
    let fs: Arc<dyn FileSystem> = Arc::new(bsfs);
    let mr = testbed::live_mapreduce(&fx, fs.clone());

    let fs2 = fs.clone();
    let mr2 = mr.clone();
    let driver = fx.spawn(NodeId(0), "driver", move |p| {
        let input = DfsPath::new("/in/hamlet.txt").unwrap();
        fs2.write_file(p, &input, Payload::from(TEXT)).unwrap();

        let job = JobConf {
            name: "wordcount".into(),
            inputs: vec![input],
            output_dir: DfsPath::new("/out").unwrap(),
            num_reducers: 3,
            output_mode: OutputMode::SharedAppendFile,
            user: workloads::wordcount::user_fns(),
            ghost: None,
            shuffle: mapreduce::ShuffleTuning::default(),
        };
        let result = mr2.submit(job).wait(p);
        println!(
            "job '{}' finished: {} maps, {} reducers, {} output file(s), {:.1} ms",
            result.name,
            result.maps,
            result.reduces,
            result.output_files,
            result.elapsed_secs() * 1e3,
        );

        // The single shared output file, as the paper promises.
        let out = fs2
            .read_file(p, &DfsPath::new("/out/result").unwrap())
            .unwrap();
        let text = String::from_utf8(out.bytes().to_vec()).unwrap();
        let mut counts: Vec<(&str, u64)> = text
            .lines()
            .filter_map(|l| {
                let (w, c) = l.split_once('\t')?;
                Some((w, c.parse().ok()?))
            })
            .collect();
        counts.sort_by_key(|&(w, c)| (std::cmp::Reverse(c), w));
        println!("top words (from the single output file):");
        for (w, c) in counts.iter().take(8) {
            println!("  {c:>3}  {w}");
        }

        // Cross-check against the in-memory reference.
        let reference = workloads::wordcount::reference_counts(TEXT);
        assert_eq!(counts.len(), reference.len());
        for (w, c) in &counts {
            assert_eq!(reference[*w], *c, "count mismatch for '{w}'");
        }
        println!("verified against the reference implementation.");
        mr2.shutdown();
    });
    let _ = driver;
    fx.run();
}
